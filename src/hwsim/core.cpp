#include "hwsim/core.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "hwsim/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace iw::hwsim {

Core::Core(Machine& machine, CoreId id)
    : machine_(machine),
      machine_now_(machine.now_cell()),
      id_(id),
      vector_table_(256) {}

const CostModel& Core::costs() const { return machine_.costs(); }

void Core::set_irq_handler(int vector, IrqHandler handler) {
  IW_ASSERT(vector >= 0 && vector < 256);
  vector_table_[static_cast<std::size_t>(vector)] = std::move(handler);
}

void Core::set_interrupts_enabled(bool enabled) {
  irq_enabled_ = enabled;
  mark_schedule_dirty();
}

void Core::post_irq(Cycles t, int vector, Cycles origin, bool ipi) {
  IW_ASSERT_MSG(machine_.shard_guard_ok(id_),
                "cross-shard post_irq during a per-core parallel drain "
                "(route cross-core IRQs through the IPI fabric)");
  IrqEvent ev;
  ev.time = t;
  ev.seq = machine_.next_seq();
  ev.vector = vector;
  ev.origin = origin == kNever ? t : origin;
  ev.ipi = ipi;
  // Spurious-fire injection: a non-IPI interrupt (LAPIC fire, device
  // vector) may grow a ghost copy that lands slightly later. The copy is
  // enqueued directly — it must not re-enter the fault draw, or a rate
  // of 1.0 would recurse forever. IPIs get their faults in post_ipi.
  auto& faults = machine_.fault_injector();
  if (!ipi && faults.enabled()) {
    if (const Cycles lag = faults.spurious_irq_lag(machine_.exec_source(), t);
        lag != 0) {
      IrqEvent ghost = ev;
      ghost.time = t + lag;
      ghost.seq = machine_.next_seq();
      irq_inbox_.push(ghost);
      if (auto* tr = machine_.tracer()) {
        tr->instant(id_, "fault.spurious_irq", t + lag, vector);
      }
      if (auto* mx = machine_.metrics()) {
        mx->add(obs::names::kFaultsSpuriousIrqs);
      }
    }
  }
  irq_inbox_.push(ev);
  mark_schedule_dirty();
}

void Core::post_callback(Cycles t, std::function<void()> fn) {
  IW_ASSERT_MSG(machine_.shard_guard_ok(id_),
                "cross-shard post_callback during a per-core parallel "
                "drain");
  CoreEvent ev;
  ev.time = t;
  ev.seq = machine_.next_seq();
  ev.fn = callback_inbox_.park_fn(std::move(fn));
  callback_inbox_.push(ev);
  mark_schedule_dirty();
}

void Core::post_event(Cycles t, SinkId sink, const EventPayload& payload) {
  IW_ASSERT_MSG(machine_.shard_guard_ok(id_),
                "cross-shard post_event during a per-core parallel drain");
  // Validate at post time, not dispatch time: a bad id fails where the
  // posting code is on the stack.
  IW_ASSERT_MSG(machine_.event_sink(sink) != nullptr,
                "post_event: sink id not registered");
  CoreEvent ev;
  ev.time = t;
  ev.seq = machine_.next_seq();
  ev.ideal = t;
  ev.sink = sink;
  ev.payload = payload;
  callback_inbox_.push(std::move(ev));
  mark_schedule_dirty();
}

void Core::post_timer(Cycles t, TimerSink* sink, std::uint64_t gen) {
  IW_ASSERT(sink != nullptr);
  IW_ASSERT_MSG(machine_.shard_guard_ok(id_),
                "cross-shard post_timer during a per-core parallel drain");
  CoreEvent ev;
  ev.seq = machine_.next_seq();
  ev.timer = sink;
  ev.gen = gen;
  // Timer perturbation: drift shifts the fire's *ideal* time (which the
  // sink re-arms from, so it accumulates into cadence slip); jitter only
  // delays when the core recognizes the fire, leaving the ideal — and
  // hence the cadence — untouched.
  ev.ideal = t;
  ev.time = t;
  auto& faults = machine_.fault_injector();
  if (faults.enabled()) {
    const FaultInjector::TimerFate fate =
        faults.timer_fate(machine_.exec_source(), t);
    ev.ideal = t + fate.drift;
    ev.time = ev.ideal + fate.jitter;
    if ((fate.drift != 0 || fate.jitter != 0)) {
      if (auto* tr = machine_.tracer()) {
        tr->instant(id_, "fault.timer_perturb", ev.time);
      }
    }
  }
  callback_inbox_.push(std::move(ev));
  mark_schedule_dirty();
}

void Core::notify_machine_dirty() { machine_.frontier_enqueue_dirty(id_); }

unsigned Core::deliver_due_events() {
  unsigned delivered = 0;
  for (;;) {
    const Cycles cb_t = callback_inbox_.peek_time();
    const Cycles irq_t = irq_enabled_ ? irq_inbox_.peek_time() : kNever;
    const Cycles t = std::min(cb_t, irq_t);
    if (t > clock_) break;
    if (cb_t <= irq_t) {
      CoreEvent ev = callback_inbox_.pop();
      if (ev.timer != nullptr) {
        // The sink sees the ideal fire time (== ev.time unless a fault
        // plan jittered recognition), keeping absolute cadences exact.
        ev.timer->on_timer(*this, ev.ideal, ev.gen);
      } else if (ev.sink != kNoSink) {
        machine_.event_sink(ev.sink)->on_core_event(*this, ev.ideal,
                                                    ev.payload);
      } else {
        callback_inbox_.take_fn(ev.fn)();
      }
      ++delivered;
      continue;
    }
    const IrqEvent ev = irq_inbox_.pop();
    const CostModel& cm = costs();
    const Cycles start = clock_;
    consume(cm.interrupt_dispatch);
    const Cycles entry = clock_;
    cur_irq_origin_ = ev.origin;
    if (auto* tr = machine_.tracer()) {
      tr->instant(id_, "irq.handler_entry", entry, ev.vector);
    }
    if (auto* mx = machine_.metrics()) {
      if (ev.ipi && entry >= ev.origin) {
        mx->record(obs::names::kIpiSendToHandlerEntry, entry - ev.origin);
      }
    }
    auto& handler = vector_table_[static_cast<std::size_t>(ev.vector)];
    if (handler) handler(*this, ev.vector);
    consume(cm.interrupt_return);
    if (auto* tr = machine_.tracer()) {
      tr->span(id_, ev.ipi ? "ipi.dispatch" : "irq.dispatch", start, clock_,
               ev.vector);
    }
    irq_overhead_ += clock_ - start;
    ++irqs_delivered_;
    ++delivered;
  }
  if (delivered != 0) mark_schedule_dirty();
  return delivered;
}

bool Core::runnable() { return driver_ != nullptr && driver_->runnable(*this); }

Cycles Core::compute_next_action_time() {
  if (runnable()) return clock_;
  const Cycles cb_t = callback_inbox_.peek_time();
  const Cycles irq_t = irq_enabled_ ? irq_inbox_.peek_time() : kNever;
  const Cycles t = std::min(cb_t, irq_t);
  if (t == kNever) return kNever;
  return std::max(t, clock_);
}

void Core::commit_fast_forward(const FastForwardPlan& plan) {
  IW_ASSERT(driver_ != nullptr);
  IW_ASSERT_MSG(plan.steps >= 1 && plan.end_clock > clock_,
                "fast-forward plan must replay at least one step");
  // steps_ counts the replayed steps so per-core accounting (and hence
  // dump_state, digests, and the advance watchdog upstream) is
  // bit-identical to having stepped the window.
  steps_ += plan.steps;
  // consume() is the charge path: Machine::charge delegates here, so
  // the skip moves the clock exactly as charged work does — the now()
  // cache and the dirty-marking invalidation both stay exact.
  consume(plan.end_clock - clock_);
  driver_->apply_fast_forward(*this, plan);
  // The driver may have gone idle (or changed its runnable answer) at
  // the committed state; consume() already invalidated, but be explicit
  // in case a zero-delta future variant skips it.
  mark_schedule_dirty();
}

void Core::advance() {
  ++steps_;
  if (!runnable()) {
    // Idle: jump to the next deliverable event (HLT wake-up).
    const Cycles cb_t = callback_inbox_.peek_time();
    const Cycles irq_t = irq_enabled_ ? irq_inbox_.peek_time() : kNever;
    const Cycles t = std::min(cb_t, irq_t);
    IW_ASSERT_MSG(t != kNever, "idle core advanced with no pending events");
    advance_to(t);
    deliver_due_events();
    mark_schedule_dirty();
    return;
  }
  deliver_due_events();
  if (runnable()) {
    // Transient stall injection: the fault plan may steal cycles from a
    // step (SMI, thermal throttle, a hypervisor preemption) — the core
    // simply runs late; interrupts queue up behind the stall.
    auto& faults = machine_.fault_injector();
    if (faults.enabled()) {
      // Stalls always strike the advancing core, so the draw comes from
      // its own stream regardless of which scheduler is running.
      if (const Cycles stolen = faults.stall_cycles(id_ + 1, clock_);
          stolen != 0) {
        const Cycles from = clock_;
        consume(stolen);
        if (auto* tr = machine_.tracer()) {
          tr->span(id_, "fault.stall", from, clock_);
        }
        if (auto* mx = machine_.metrics()) {
          mx->add(obs::names::kFaultsStalls);
        }
      }
    }
    const Cycles before = clock_;
    driver_->step(*this);
    IW_ASSERT_MSG(clock_ > before, "driver step must consume cycles");
  }
  mark_schedule_dirty();
}

std::uint64_t Core::drain_until(Cycles horizon) {
  // Fused form of `while (next_action_time_uncached() < horizon)
  // advance();` — the parallel epoch engine's inner loop. Identical
  // observable behavior (same delivery order, same fault draws, same
  // step/advance accounting), but the wake-time recompute and the
  // advance dispatch share one runnable()/peek pass per iteration
  // instead of three.
  std::uint64_t advances = 0;
  auto& faults = machine_.fault_injector();
  const bool faults_on = faults.enabled();
  for (;;) {
    if (runnable()) {
      if (clock_ >= horizon) break;
      ++steps_;
      ++advances;
      deliver_due_events();
      if (runnable()) {
        if (faults_on) {
          if (const Cycles stolen = faults.stall_cycles(id_ + 1, clock_);
              stolen != 0) {
            const Cycles from = clock_;
            consume(stolen);
            if (auto* tr = machine_.tracer()) {
              tr->span(id_, "fault.stall", from, clock_);
            }
            if (auto* mx = machine_.metrics()) {
              mx->add(obs::names::kFaultsStalls);
            }
          }
        }
        const Cycles before = clock_;
        driver_->step(*this);
        IW_ASSERT_MSG(clock_ > before, "driver step must consume cycles");
      }
      mark_schedule_dirty();
      continue;
    }
    const Cycles cb_t = callback_inbox_.peek_time();
    const Cycles irq_t = irq_enabled_ ? irq_inbox_.peek_time() : kNever;
    const Cycles t = std::min(cb_t, irq_t);
    if (t == kNever || std::max(t, clock_) >= horizon) break;
    ++steps_;
    ++advances;
    advance_to(t);
    deliver_due_events();
    mark_schedule_dirty();
  }
  return advances;
}

}  // namespace iw::hwsim
