#include "hwsim/core.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "hwsim/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace iw::hwsim {

Core::Core(Machine& machine, CoreId id)
    : machine_(machine), id_(id), vector_table_(256) {}

const CostModel& Core::costs() const { return machine_.costs(); }

void Core::set_irq_handler(int vector, IrqHandler handler) {
  IW_ASSERT(vector >= 0 && vector < 256);
  vector_table_[static_cast<std::size_t>(vector)] = std::move(handler);
}

void Core::set_interrupts_enabled(bool enabled) { irq_enabled_ = enabled; }

void Core::post_irq(Cycles t, int vector, Cycles origin, bool ipi) {
  Event ev;
  ev.time = t;
  ev.seq = machine_.next_seq();
  ev.kind = EventKind::kIrq;
  ev.vector = vector;
  ev.origin = origin == kNever ? t : origin;
  ev.ipi = ipi;
  irq_inbox_.push(std::move(ev));
}

void Core::post_callback(Cycles t, std::function<void()> fn) {
  Event ev;
  ev.time = t;
  ev.seq = machine_.next_seq();
  ev.kind = EventKind::kCallback;
  ev.fn = std::move(fn);
  callback_inbox_.push(std::move(ev));
}

unsigned Core::deliver_due_events() {
  unsigned delivered = 0;
  for (;;) {
    const Cycles cb_t = callback_inbox_.peek_time();
    const Cycles irq_t = irq_enabled_ ? irq_inbox_.peek_time() : kNever;
    const Cycles t = std::min(cb_t, irq_t);
    if (t > clock_) break;
    if (cb_t <= irq_t) {
      Event ev = callback_inbox_.pop();
      ev.fn();
      ++delivered;
      continue;
    }
    Event ev = irq_inbox_.pop();
    const CostModel& cm = costs();
    const Cycles start = clock_;
    consume(cm.interrupt_dispatch);
    const Cycles entry = clock_;
    cur_irq_origin_ = ev.origin;
    if (auto* tr = machine_.tracer()) {
      tr->instant(id_, "irq.handler_entry", entry, ev.vector);
    }
    if (auto* mx = machine_.metrics()) {
      if (ev.ipi && entry >= ev.origin) {
        mx->record(obs::names::kIpiSendToHandlerEntry, entry - ev.origin);
      }
    }
    auto& handler = vector_table_[static_cast<std::size_t>(ev.vector)];
    if (handler) handler(*this, ev.vector);
    consume(cm.interrupt_return);
    if (auto* tr = machine_.tracer()) {
      tr->span(id_, ev.ipi ? "ipi.dispatch" : "irq.dispatch", start, clock_,
               ev.vector);
    }
    irq_overhead_ += clock_ - start;
    ++irqs_delivered_;
    ++delivered;
  }
  return delivered;
}

bool Core::runnable() { return driver_ != nullptr && driver_->runnable(*this); }

Cycles Core::next_action_time() {
  if (runnable()) return clock_;
  const Cycles cb_t = callback_inbox_.peek_time();
  const Cycles irq_t = irq_enabled_ ? irq_inbox_.peek_time() : kNever;
  const Cycles t = std::min(cb_t, irq_t);
  if (t == kNever) return kNever;
  return std::max(t, clock_);
}

void Core::advance() {
  ++steps_;
  if (!runnable()) {
    // Idle: jump to the next deliverable event (HLT wake-up).
    const Cycles cb_t = callback_inbox_.peek_time();
    const Cycles irq_t = irq_enabled_ ? irq_inbox_.peek_time() : kNever;
    const Cycles t = std::min(cb_t, irq_t);
    IW_ASSERT_MSG(t != kNever, "idle core advanced with no pending events");
    advance_to(t);
    deliver_due_events();
    return;
  }
  deliver_due_events();
  if (runnable()) {
    const Cycles before = clock_;
    driver_->step(*this);
    IW_ASSERT_MSG(clock_ > before, "driver step must consume cycles");
  }
}

}  // namespace iw::hwsim
