// A simulated CPU core: a local virtual-cycle clock, an interrupt
// controller front-end (vector table + pending queues), and a pluggable
// CoreDriver that supplies the work the core executes.
//
// Execution model: the machine's DES loop always advances the core whose
// next action has the globally smallest timestamp, so shared state is
// always touched in nondecreasing virtual-time order. Drivers execute in
// *steps*; interrupts are recognized at step boundaries (exactly the
// "check placement granularity" story that Figs. 3 and 4 are about).
//
// Scheduling cache: `next_action_time()` is cached and recomputed only
// after an invalidation, so the machine's frontier index pays O(log N)
// per event instead of O(N) rescans. Every mutation the simulator itself
// performs (event posts, clock movement, mask changes, delivery) marks
// the cache dirty automatically. A CoreDriver whose `runnable()` answer
// can change through any *other* channel (e.g. direct mutation of shared
// run queues from a different core's timeline) must call
// `mark_schedule_dirty()` on the affected core — see nautilus::Kernel's
// enqueue_ready/submit_task for the canonical examples.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "hwsim/cost_model.hpp"
#include "hwsim/event_queue.hpp"

namespace iw::hwsim {

class Machine;
class Core;

/// Interrupt handler: called with the core at the time of dispatch.
using IrqHandler = std::function<void(Core&, int vector)>;

/// An analytic skip-ahead plan: the exact trajectory a core's driver
/// steps would trace up to a proven-quiet horizon (see
/// CoreDriver::plan_fast_forward and Machine's FastForwardPolicy).
struct FastForwardPlan {
  /// Clock after replaying the steps: the first stepped value at/past
  /// the horizon (a step straddling the horizon completes — delivery
  /// happens at clock >= event time, matching full fidelity), or
  /// earlier if the driver goes idle inside the window.
  Cycles end_clock{0};
  /// Number of driver steps the plan replays analytically.
  std::uint64_t steps{0};
};

/// Supplies work for a core. Implemented by the kernel substrates
/// (nautilus::Kernel, linuxmodel::LinuxStack).
class CoreDriver {
 public:
  virtual ~CoreDriver() = default;

  /// Does this core have runnable work right now? Must be side-effect
  /// free: the scheduler may cache the answer until the next
  /// invalidation (see the scheduling-cache contract above).
  virtual bool runnable(Core& core) = 0;

  /// Execute one step; must advance core.clock() by at least one cycle
  /// (enforced by the machine loop to guarantee progress).
  virtual void step(Core& core) = 0;

  /// Selectable-fidelity hook. Certify that every step this driver
  /// would execute while core.clock() < `horizon` is *inert* — it
  /// consumes cycles and mutates only this driver's own per-core state;
  /// it posts no event, sends no IPI, draws no RNG or sequence number,
  /// records no trace or metric, and touches no other core — and
  /// predict the stepped trajectory exactly: plan->end_clock and
  /// plan->steps must equal what step-by-step execution would produce
  /// (the machine's paranoid mode re-runs sampled windows in full
  /// fidelity and aborts on any mismatch). A driver that goes idle
  /// inside the window reports the shorter trajectory (end_clock <
  /// horizon, runnable() false at that clock). Must itself be
  /// side-effect free; state is committed later via apply_fast_forward.
  /// Return false to decline (the default): the DES then steps the
  /// window cycle-accurately. Declining is always safe.
  virtual bool plan_fast_forward(Core& core, Cycles horizon,
                                 FastForwardPlan* plan) {
    (void)core;
    (void)horizon;
    (void)plan;
    return false;
  }

  /// Commit driver-internal state for a plan the machine is applying
  /// (e.g. decrement a remaining-work counter by plan.steps). The
  /// machine moves the core clock and the step/advance accounting
  /// itself; this hook must not touch the core.
  virtual void apply_fast_forward(Core& core, const FastForwardPlan& plan) {
    (void)core;
    (void)plan;
  }
};

class Core {
 public:
  Core(Machine& machine, CoreId id);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  [[nodiscard]] CoreId id() const { return id_; }
  [[nodiscard]] Cycles clock() const { return clock_; }
  [[nodiscard]] Machine& machine() { return machine_; }
  [[nodiscard]] const CostModel& costs() const;

  /// Consume `c` cycles of execution time.
  void consume(Cycles c) {
    clock_ += c;
    on_clock_moved();
  }

  /// Move the clock forward to `t` (no-op if already past it).
  void advance_to(Cycles t) {
    if (t > clock_) {
      clock_ = t;
      on_clock_moved();
    }
  }

  // --- interrupt controller front-end ---

  void set_irq_handler(int vector, IrqHandler handler);
  void set_interrupts_enabled(bool enabled);
  [[nodiscard]] bool interrupts_enabled() const { return irq_enabled_; }

  /// Post an IRQ to arrive at absolute time `t` (called by machine/LAPIC).
  /// `origin` is the virtual time of the causing action (IPI send, LAPIC
  /// fire) for latency attribution; kNever means "same as t". `ipi`
  /// marks inter-processor interrupts for the IPI latency histogram.
  void post_irq(Cycles t, int vector, Cycles origin = kNever,
                bool ipi = false);

  /// Origin timestamp of the IRQ currently being dispatched (valid only
  /// inside an IrqHandler; the causing action's virtual time).
  [[nodiscard]] Cycles current_irq_origin() const { return cur_irq_origin_; }

  /// Post a core-local callback at absolute time `t` (used by device
  /// models and timers that must run on this core's timeline; callbacks
  /// are machine-internal and ignore the interrupt mask). Legacy
  /// closure form: same-instance only — a snapshot holding one cannot
  /// be serialized for cross-instance hydration. Portable code posts
  /// through post_event.
  void post_callback(Cycles t, std::function<void()> fn);

  /// Post a portable core-local event at absolute time `t`: dispatched
  /// to the machine-registered sink's on_core_event with `payload`.
  /// Ordered identically to post_callback (same queue, same sequence
  /// source); the queue entry is plain data, so snapshot v2 can
  /// serialize it.
  void post_event(Cycles t, SinkId sink, const EventPayload& payload = {});

  /// Post a timer fire at absolute time `t`: the dominant scheduled-work
  /// case, carried inline (sink pointer + generation) with no closure
  /// allocation. Ordered identically to post_callback (same queue, same
  /// sequence source).
  void post_timer(Cycles t, TimerSink* sink, std::uint64_t gen);

  [[nodiscard]] std::uint64_t pending_irqs() const { return irq_inbox_.size(); }

  /// Earliest *deliverable* inbox event: callbacks unconditionally,
  /// IRQs only while interrupts are enabled; kNever if none. The
  /// fast-forward quiet proof reads this for runnable cores — a due
  /// event bounds how far their steps can be skipped, because full
  /// fidelity delivers it the moment a step carries the clock past it.
  [[nodiscard]] Cycles earliest_deliverable() const {
    const Cycles irq_t = irq_enabled_ ? irq_inbox_.peek_time() : kNever;
    return std::min(callback_inbox_.peek_time(), irq_t);
  }

  /// Deliver all events due at or before the current clock: callbacks
  /// unconditionally, IRQs only while interrupts are enabled. Each IRQ
  /// pays dispatch + return costs from the cost model.
  unsigned deliver_due_events();

  // --- driver ---

  void set_driver(CoreDriver* driver) {
    driver_ = driver;
    mark_schedule_dirty();
  }
  [[nodiscard]] CoreDriver* driver() const { return driver_; }

  /// True if the driver reports runnable work.
  [[nodiscard]] bool runnable();

  /// Next time this core needs the machine loop's attention:
  ///  - its own clock if runnable,
  ///  - else the earliest *deliverable* inbox event time,
  ///  - kNever if idle with nothing deliverable.
  /// Cached; recomputed only after an invalidation. The cache cell
  /// lives behind a pointer: dense machine-owned SoA arrays in the
  /// sequential schedulers (so frontier scans and the fast-forward
  /// quiet proof stream over contiguous memory), a private padded cell
  /// in per-core parallel mode (concurrent shard writes must not share
  /// a cache line). See Machine's constructor.
  [[nodiscard]] Cycles next_action_time() {
    if (*sched_dirty_ != 0) {
      *sched_time_ = compute_next_action_time();
      *sched_dirty_ = 0;
    }
    return *sched_time_;
  }

  /// Uncached recompute (the seed linear-scan scheduler's view; also the
  /// paranoid cross-check's reference).
  [[nodiscard]] Cycles next_action_time_uncached() {
    return compute_next_action_time();
  }

  /// Invalidate the cached next_action_time and re-register this core
  /// with the machine's frontier index. Idempotent and O(1) while
  /// already dirty. Drivers must call this when their runnable() answer
  /// changes through a channel the simulator cannot observe.
  void mark_schedule_dirty() {
    if (*sched_dirty_ == 0) {
      *sched_dirty_ = 1;
      notify_machine_dirty();
    }
  }

  /// Execute one advance: deliver due events, then run one driver step
  /// (or jump the clock to the next event if idle).
  void advance();

  /// Advance repeatedly while the next action lies strictly before
  /// `horizon`; returns the number of advances executed. Exactly
  /// equivalent to `while (next_action_time_uncached() < horizon)
  /// advance();` but with the recompute/dispatch passes fused — the
  /// parallel epoch engine's budgetless shard drain.
  std::uint64_t drain_until(Cycles horizon);

  /// Commit one analytic skip (machine-only: the quiet-window proof
  /// lives in Machine::try_fast_forward). Moves the clock through the
  /// same charging path stepping uses, accounts the replayed steps, and
  /// lets the driver commit its internal state.
  void commit_fast_forward(const FastForwardPlan& plan);

  /// Pre-size both inboxes (heap + slab + free list) for `n` concurrent
  /// events. Called by the Machine constructor from
  /// MachineConfig::inbox_reserve so warm-up stops paying vector growth.
  void reserve_inboxes(std::size_t n) {
    irq_inbox_.reserve(n);
    callback_inbox_.reserve(n);
  }

  // --- accounting ---
  [[nodiscard]] std::uint64_t irqs_delivered() const { return irqs_delivered_; }
  [[nodiscard]] Cycles irq_overhead_cycles() const { return irq_overhead_; }
  [[nodiscard]] std::uint64_t steps_executed() const { return steps_; }
  /// Growth reallocations both inboxes have performed since
  /// construction (see TimedQueue::grow_allocs; feeds
  /// Machine::hot_path_allocs and the allocs_per_million_events bench
  /// number).
  [[nodiscard]] std::uint64_t inbox_grow_allocs() const {
    return irq_inbox_.grow_allocs() + callback_inbox_.grow_allocs();
  }

 private:
  friend class Machine;

  /// Push a fully-formed IRQ event (sequence number and fault fate
  /// already drawn in the sender's context) into the inbox. The fabric
  /// delivery tail: called by Machine::enqueue_ipi directly or at an
  /// epoch barrier when the delivery was buffered in a sender outbox.
  void enqueue_irq(const IrqEvent& ev) {
    irq_inbox_.push(ev);
    mark_schedule_dirty();
  }

  [[nodiscard]] Cycles compute_next_action_time();
  /// Out-of-line slow path: registers with the machine's frontier.
  void notify_machine_dirty();

  /// Clock moved: keep the machine's O(1) now() cache exact (clocks are
  /// monotone, so the global frontier is a running max) and invalidate
  /// the scheduling cache.
  void on_clock_moved() {
    if (clock_ > *machine_now_) *machine_now_ = clock_;
    mark_schedule_dirty();
  }

  Machine& machine_;
  /// Destination of clock-movement publication: Machine::now_cache_ in
  /// the sequential schedulers, this core's private slot in per-core
  /// parallel mode (repointed by the Machine constructor).
  Cycles* machine_now_;
  CoreId id_;
  Cycles clock_{0};
  bool irq_enabled_{true};
  /// Scheduling-cache cell for this core, as one padded private block.
  /// The slot pointers below default to it and are repointed into the
  /// machine's dense SoA arrays by the sequential schedulers (same
  /// pattern as machine_now_): dense for scan locality, private for
  /// shard isolation.
  struct alignas(64) SchedCell {
    Cycles time{0};
    std::uint8_t dirty{1};
  };
  SchedCell sched_cell_;
  Cycles* sched_time_{&sched_cell_.time};
  std::uint8_t* sched_dirty_{&sched_cell_.dirty};
  Cycles cur_irq_origin_{0};
  TimedQueue<IrqEvent> irq_inbox_;
  TimedQueue<CoreEvent> callback_inbox_;
  std::vector<IrqHandler> vector_table_;
  CoreDriver* driver_{nullptr};

  std::uint64_t irqs_delivered_{0};
  Cycles irq_overhead_{0};
  std::uint64_t steps_{0};
};

}  // namespace iw::hwsim
