// A simulated CPU core: a local virtual-cycle clock, an interrupt
// controller front-end (vector table + pending queues), and a pluggable
// CoreDriver that supplies the work the core executes.
//
// Execution model: the machine's DES loop always advances the core whose
// next action has the globally smallest timestamp, so shared state is
// always touched in nondecreasing virtual-time order. Drivers execute in
// *steps*; interrupts are recognized at step boundaries (exactly the
// "check placement granularity" story that Figs. 3 and 4 are about).
//
// Scheduling cache: `next_action_time()` is cached and recomputed only
// after an invalidation, so the machine's frontier index pays O(log N)
// per event instead of O(N) rescans. Every mutation the simulator itself
// performs (event posts, clock movement, mask changes, delivery) marks
// the cache dirty automatically. A CoreDriver whose `runnable()` answer
// can change through any *other* channel (e.g. direct mutation of shared
// run queues from a different core's timeline) must call
// `mark_schedule_dirty()` on the affected core — see nautilus::Kernel's
// enqueue_ready/submit_task for the canonical examples.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "hwsim/cost_model.hpp"
#include "hwsim/event_queue.hpp"

namespace iw::hwsim {

class Machine;
class Core;

/// Interrupt handler: called with the core at the time of dispatch.
using IrqHandler = std::function<void(Core&, int vector)>;

/// Supplies work for a core. Implemented by the kernel substrates
/// (nautilus::Kernel, linuxmodel::LinuxStack).
class CoreDriver {
 public:
  virtual ~CoreDriver() = default;

  /// Does this core have runnable work right now? Must be side-effect
  /// free: the scheduler may cache the answer until the next
  /// invalidation (see the scheduling-cache contract above).
  virtual bool runnable(Core& core) = 0;

  /// Execute one step; must advance core.clock() by at least one cycle
  /// (enforced by the machine loop to guarantee progress).
  virtual void step(Core& core) = 0;
};

class Core {
 public:
  Core(Machine& machine, CoreId id);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  [[nodiscard]] CoreId id() const { return id_; }
  [[nodiscard]] Cycles clock() const { return clock_; }
  [[nodiscard]] Machine& machine() { return machine_; }
  [[nodiscard]] const CostModel& costs() const;

  /// Consume `c` cycles of execution time.
  void consume(Cycles c) {
    clock_ += c;
    on_clock_moved();
  }

  /// Move the clock forward to `t` (no-op if already past it).
  void advance_to(Cycles t) {
    if (t > clock_) {
      clock_ = t;
      on_clock_moved();
    }
  }

  // --- interrupt controller front-end ---

  void set_irq_handler(int vector, IrqHandler handler);
  void set_interrupts_enabled(bool enabled);
  [[nodiscard]] bool interrupts_enabled() const { return irq_enabled_; }

  /// Post an IRQ to arrive at absolute time `t` (called by machine/LAPIC).
  /// `origin` is the virtual time of the causing action (IPI send, LAPIC
  /// fire) for latency attribution; kNever means "same as t". `ipi`
  /// marks inter-processor interrupts for the IPI latency histogram.
  void post_irq(Cycles t, int vector, Cycles origin = kNever,
                bool ipi = false);

  /// Origin timestamp of the IRQ currently being dispatched (valid only
  /// inside an IrqHandler; the causing action's virtual time).
  [[nodiscard]] Cycles current_irq_origin() const { return cur_irq_origin_; }

  /// Post a core-local callback at absolute time `t` (used by device
  /// models and timers that must run on this core's timeline; callbacks
  /// are machine-internal and ignore the interrupt mask).
  void post_callback(Cycles t, std::function<void()> fn);

  /// Post a timer fire at absolute time `t`: the dominant scheduled-work
  /// case, carried inline (sink pointer + generation) with no closure
  /// allocation. Ordered identically to post_callback (same queue, same
  /// sequence source).
  void post_timer(Cycles t, TimerSink* sink, std::uint64_t gen);

  [[nodiscard]] std::uint64_t pending_irqs() const { return irq_inbox_.size(); }

  /// Deliver all events due at or before the current clock: callbacks
  /// unconditionally, IRQs only while interrupts are enabled. Each IRQ
  /// pays dispatch + return costs from the cost model.
  unsigned deliver_due_events();

  // --- driver ---

  void set_driver(CoreDriver* driver) {
    driver_ = driver;
    mark_schedule_dirty();
  }
  [[nodiscard]] CoreDriver* driver() const { return driver_; }

  /// True if the driver reports runnable work.
  [[nodiscard]] bool runnable();

  /// Next time this core needs the machine loop's attention:
  ///  - its own clock if runnable,
  ///  - else the earliest *deliverable* inbox event time,
  ///  - kNever if idle with nothing deliverable.
  /// Cached; recomputed only after an invalidation.
  [[nodiscard]] Cycles next_action_time() {
    if (schedule_dirty_) {
      cached_next_action_ = compute_next_action_time();
      schedule_dirty_ = false;
    }
    return cached_next_action_;
  }

  /// Uncached recompute (the seed linear-scan scheduler's view; also the
  /// paranoid cross-check's reference).
  [[nodiscard]] Cycles next_action_time_uncached() {
    return compute_next_action_time();
  }

  /// Invalidate the cached next_action_time and re-register this core
  /// with the machine's frontier index. Idempotent and O(1) while
  /// already dirty. Drivers must call this when their runnable() answer
  /// changes through a channel the simulator cannot observe.
  void mark_schedule_dirty() {
    if (!schedule_dirty_) {
      schedule_dirty_ = true;
      notify_machine_dirty();
    }
  }

  /// Execute one advance: deliver due events, then run one driver step
  /// (or jump the clock to the next event if idle).
  void advance();

  // --- accounting ---
  [[nodiscard]] std::uint64_t irqs_delivered() const { return irqs_delivered_; }
  [[nodiscard]] Cycles irq_overhead_cycles() const { return irq_overhead_; }
  [[nodiscard]] std::uint64_t steps_executed() const { return steps_; }

 private:
  friend class Machine;

  /// Push a fully-formed IRQ event (sequence number and fault fate
  /// already drawn in the sender's context) into the inbox. The fabric
  /// delivery tail: called by Machine::enqueue_ipi directly or at an
  /// epoch barrier when the delivery was buffered in a sender outbox.
  void enqueue_irq(const IrqEvent& ev) {
    irq_inbox_.push(ev);
    mark_schedule_dirty();
  }

  [[nodiscard]] Cycles compute_next_action_time();
  /// Out-of-line slow path: registers with the machine's frontier.
  void notify_machine_dirty();

  /// Clock moved: keep the machine's O(1) now() cache exact (clocks are
  /// monotone, so the global frontier is a running max) and invalidate
  /// the scheduling cache.
  void on_clock_moved() {
    if (clock_ > *machine_now_) *machine_now_ = clock_;
    mark_schedule_dirty();
  }

  Machine& machine_;
  /// Destination of clock-movement publication: Machine::now_cache_ in
  /// the sequential schedulers, this core's private slot in per-core
  /// parallel mode (repointed by the Machine constructor).
  Cycles* machine_now_;
  CoreId id_;
  Cycles clock_{0};
  bool irq_enabled_{true};
  bool schedule_dirty_{true};
  Cycles cached_next_action_{0};
  Cycles cur_irq_origin_{0};
  TimedQueue<IrqEvent> irq_inbox_;
  TimedQueue<CoreEvent> callback_inbox_;
  std::vector<IrqHandler> vector_table_;
  CoreDriver* driver_{nullptr};

  std::uint64_t irqs_delivered_{0};
  Cycles irq_overhead_{0};
  std::uint64_t steps_{0};
};

}  // namespace iw::hwsim
