#include "hwsim/lapic.hpp"

#include "hwsim/core.hpp"
#include "hwsim/machine.hpp"
#include "obs/trace.hpp"

namespace iw::hwsim {

LapicTimer::LapicTimer(Core& core, int vector) : core_(core), vector_(vector) {
  core_.machine().register_snapshot_participant(this);
  sink_id_ = core_.machine().register_timer_sink(this);
}

LapicTimer::~LapicTimer() {
  core_.machine().unregister_timer_sink(sink_id_);
  core_.machine().unregister_snapshot_participant(this);
}

void LapicTimer::save_state(SnapshotWriter& w) const {
  w.b(armed_);
  w.u64(period_);
  w.u64(generation_);
  w.u64(fires_);
}

void LapicTimer::restore_state(SnapshotReader& r) {
  armed_ = r.b();
  period_ = r.u64();
  generation_ = r.u64();
  fires_ = r.u64();
}

void LapicTimer::oneshot(Cycles delta) {
  core_.consume(core_.costs().lapic_program);
  armed_ = true;
  period_ = 0;
  ++generation_;
  schedule_fire(core_.clock() + delta);
}

void LapicTimer::periodic(Cycles period) {
  core_.consume(core_.costs().lapic_program);
  armed_ = true;
  period_ = period;
  ++generation_;
  schedule_fire(core_.clock() + period);
}

void LapicTimer::stop() {
  armed_ = false;
  ++generation_;  // invalidates in-flight fires
}

void LapicTimer::schedule_fire(Cycles at) {
  core_.post_timer(at, this, generation_);
}

void LapicTimer::on_timer(Core& core, Cycles at, std::uint64_t gen) {
  if (!armed_ || gen != generation_) return;  // disarmed/re-armed since
  ++fires_;
  if (auto* tr = core.machine().tracer()) {
    tr->instant(core.id(), "lapic.fire", at, vector_);
  }
  core.post_irq(at, vector_, /*origin=*/at);
  if (period_ != 0) {
    schedule_fire(at + period_);  // absolute cadence, no drift
  } else {
    armed_ = false;
  }
}

}  // namespace iw::hwsim
