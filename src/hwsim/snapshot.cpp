// Machine::snapshot()/restore() and the Snapshot digest.
//
// What is captured where:
//  * digested words — per-core clocks/IRQ state/accounting, machine
//    advances, per-source seq and IPI counters, the machine Rng, fault
//    stream RNG states + counters, and every participant blob
//    (length-prefixed). Everything here is semantically observable and
//    therefore identical across scheduler × steal × ff configurations
//    of the same scenario.
//  * ephemeral words — fast-forward accounting and backoff, fault
//    opportunity counters and script cursors. Needed for an exact
//    same-mode restore, but legitimately different across ff modes
//    (an analytic skip elides step opportunities without changing any
//    draw), so the digest excludes them.
//  * live queue copies — the machine callback queue and both per-core
//    inboxes, value-copied closures and all. This is the same-instance
//    part of the format: closures capture pointers into the machine and
//    workload objects, which stay valid only for the original instance.
//
// What is deliberately NOT captured: scheduling caches (frontier heap,
// dirty lists, cached next-action times, the now() caches) — all
// derived from core/queue state and rebuilt on restore by marking every
// core dirty; vector tables and drivers (structural wiring, not state);
// observability sinks (tracer/metrics attachments are the caller's).
#include "hwsim/snapshot.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "hwsim/machine.hpp"
#include "hwsim/parallel.hpp"

namespace iw::hwsim {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xFFu;
    h *= kFnvPrime;
    v >>= 8;
  }
}

/// (time, seq)-sorted view of a queue's events. The packed heap/slab
/// layout depends on push interleaving (sequential vs epoch-barrier
/// merge), but (time, seq) is a total order on the logical contents —
/// sorting makes the digest layout-independent.
template <class EventT>
std::vector<const EventT*> sorted_view(const TimedQueue<EventT>& q) {
  std::vector<const EventT*> v;
  v.reserve(q.size());
  q.for_each([&v](const EventT& e) { v.push_back(&e); });
  std::sort(v.begin(), v.end(), [](const EventT* a, const EventT* b) {
    return a->time < b->time || (a->time == b->time && a->seq < b->seq);
  });
  return v;
}

void mix_queue(std::uint64_t& h, const TimedQueue<Event>& q) {
  mix(h, q.size());
  for (const Event* e : sorted_view(q)) {
    mix(h, e->time);
    mix(h, e->seq);
    mix(h, e->sink);
    for (std::uint64_t wd : e->payload.w) mix(h, wd);
    mix(h, e->fn != kNoFnSlot ? 1 : 0);
  }
}

void mix_queue(std::uint64_t& h, const TimedQueue<IrqEvent>& q) {
  mix(h, q.size());
  for (const IrqEvent* e : sorted_view(q)) {
    mix(h, e->time);
    mix(h, e->seq);
    mix(h, e->origin);
    mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e->vector)));
    mix(h, e->ipi ? 1 : 0);
  }
}

void mix_queue(std::uint64_t& h, const TimedQueue<CoreEvent>& q) {
  mix(h, q.size());
  for (const CoreEvent* e : sorted_view(q)) {
    mix(h, e->time);
    mix(h, e->seq);
    mix(h, e->gen);
    mix(h, e->ideal);
    // Pointer-free timer identity: a captured copy carries the stamped
    // timer_sink id, so a donor snapshot and its deserialized transport
    // hash identically even though only the donor holds the pointer.
    mix(h, e->timer != nullptr || e->timer_sink != kNoSink ? 1 : 0);
    mix(h, e->timer_sink);
    mix(h, e->sink);
    for (std::uint64_t wd : e->payload.w) mix(h, wd);
    mix(h, e->fn != kNoFnSlot ? 1 : 0);
  }
}

/// Immutable-shape hash: core count and seeds. Scheduler, threads,
/// steal, and ff mode are execution strategies and excluded on purpose
/// (they may change between snapshot and restore).
std::uint64_t config_fingerprint(const MachineConfig& cfg) {
  std::uint64_t h = kFnvOffset;
  mix(h, cfg.num_cores);
  mix(h, cfg.seed);
  mix(h, cfg.fault_seed);
  return h;
}

}  // namespace

std::uint64_t Snapshot::digest() const {
  std::uint64_t h = kFnvOffset;
  mix(h, version);
  mix(h, at);
  mix(h, words.size());
  for (std::uint64_t w : words) mix(h, w);
  mix_queue(h, machine_queue);
  mix(h, cores.size());
  for (const CoreQueues& cq : cores) {
    mix_queue(h, cq.irq);
    mix_queue(h, cq.callbacks);
  }
  return h;
}

std::size_t Snapshot::footprint_words() const {
  std::size_t n = words.size() + ephemeral.size();
  n += machine_queue.size() * (sizeof(Event) / 8);
  for (const CoreQueues& cq : cores) {
    n += cq.irq.size() * (sizeof(IrqEvent) / 8);
    n += cq.callbacks.size() * (sizeof(CoreEvent) / 8);
  }
  return n;
}

std::vector<std::uint64_t> Snapshot::serialize() const {
  SnapshotWriter w;
  w.u64(kMagic);
  w.u64(version);
  w.u64(fingerprint);
  w.u64(at);
  w.u64(participant_count);
  w.u64(words.size());
  for (std::uint64_t x : words) w.u64(x);
  w.u64(ephemeral.size());
  for (std::uint64_t x : ephemeral) w.u64(x);

  // Queues are written in (time, seq) order — the logical contents —
  // not heap layout, so the image is byte-identical for two snapshots
  // whose queues were populated under different push interleavings.
  w.u64(machine_queue.size());
  for (const Event* e : sorted_view(machine_queue)) {
    IW_ASSERT_MSG(e->fn == kNoFnSlot,
                  "snapshot v2 cannot serialize a pending legacy closure "
                  "in the machine queue (use Machine::schedule_event with "
                  "a registered EventSink instead of schedule_at)");
    w.u64(e->time);
    w.u64(e->seq);
    w.u64(e->sink);
    for (std::uint64_t pw : e->payload.w) w.u64(pw);
  }
  w.u64(cores.size());
  for (const CoreQueues& cq : cores) {
    w.u64(cq.irq.size());
    for (const IrqEvent* e : sorted_view(cq.irq)) {
      w.u64(e->time);
      w.u64(e->seq);
      w.u64(e->origin);
      w.i64(e->vector);
      w.b(e->ipi);
    }
    w.u64(cq.callbacks.size());
    for (const CoreEvent* e : sorted_view(cq.callbacks)) {
      IW_ASSERT_MSG(e->fn == kNoFnSlot,
                    "snapshot v2 cannot serialize a pending legacy "
                    "closure in a core callback inbox (use "
                    "Core::post_event with a registered EventSink "
                    "instead of post_callback)");
      IW_ASSERT_MSG(e->timer == nullptr || e->timer_sink != kNoSink,
                    "snapshot v2 cannot serialize a pending fire for an "
                    "unregistered TimerSink (register the timer with "
                    "Machine::register_timer_sink)");
      w.u64(e->time);
      w.u64(e->seq);
      w.u64(e->gen);
      w.u64(e->ideal);
      w.u64(e->timer_sink);
      w.u64(e->sink);
      for (std::uint64_t pw : e->payload.w) w.u64(pw);
    }
  }
  return w.take();
}

Snapshot Snapshot::deserialize(const std::vector<std::uint64_t>& image) {
  SnapshotReader r(image);
  IW_ASSERT_MSG(r.remaining() >= 2 && image[0] == kMagic,
                "snapshot image rejected: bad magic word (not a "
                "serialized hwsim snapshot)");
  (void)r.u64();  // magic
  const std::uint64_t ver = r.u64();
  IW_ASSERT_MSG(ver == kFormatVersion,
                "snapshot image rejected: unsupported format version "
                "(this build reads format v2 only; re-capture the "
                "snapshot with a matching build)");

  Snapshot s;
  s.version = ver;
  s.fingerprint = r.u64();
  s.at = r.u64();
  s.participant_count = r.u64();
  s.words.resize(r.u64());
  for (std::uint64_t& x : s.words) x = r.u64();
  s.ephemeral.resize(r.u64());
  for (std::uint64_t& x : s.ephemeral) x = r.u64();

  const std::uint64_t n_machine = r.u64();
  for (std::uint64_t i = 0; i < n_machine; ++i) {
    Event e;
    e.time = r.u64();
    e.seq = r.u64();
    e.sink = static_cast<SinkId>(r.u64());
    for (std::uint64_t& pw : e.payload.w) pw = r.u64();
    s.machine_queue.push(std::move(e));
  }
  s.cores.resize(r.u64());
  for (CoreQueues& cq : s.cores) {
    const std::uint64_t n_irq = r.u64();
    for (std::uint64_t i = 0; i < n_irq; ++i) {
      IrqEvent e;
      e.time = r.u64();
      e.seq = r.u64();
      e.origin = r.u64();
      e.vector = static_cast<std::int32_t>(r.i64());
      e.ipi = r.b();
      cq.irq.push(e);
    }
    const std::uint64_t n_cb = r.u64();
    for (std::uint64_t i = 0; i < n_cb; ++i) {
      CoreEvent e;
      e.time = r.u64();
      e.seq = r.u64();
      e.gen = r.u64();
      e.ideal = r.u64();
      e.timer_sink = static_cast<SinkId>(r.u64());
      e.sink = static_cast<SinkId>(r.u64());
      for (std::uint64_t& pw : e.payload.w) pw = r.u64();
      cq.callbacks.push(std::move(e));
    }
  }
  IW_ASSERT_MSG(r.remaining() == 0,
                "snapshot image rejected: trailing words after the last "
                "queue section (truncated or corrupt image)");
  return s;
}

void Machine::register_snapshot_participant(SnapshotParticipant* p) {
  IW_ASSERT(p != nullptr);
  participants_.push_back(p);
}

void Machine::unregister_snapshot_participant(SnapshotParticipant* p) {
  const auto it =
      std::find(participants_.begin(), participants_.end(), p);
  if (it != participants_.end()) participants_.erase(it);
}

Snapshot Machine::snapshot() {
  IW_ASSERT_MSG(exec_ctx().machine != this,
                "snapshot() from inside this machine's execution context "
                "(snapshots are legal only between runs)");
  IW_ASSERT_MSG(!per_core_drain_active_,
                "snapshot() during a per-core parallel drain");
  IW_ASSERT_MSG(parallel_ == nullptr || parallel_->quiescent(),
                "snapshot() with undelivered epoch outbox traffic");

  Snapshot s;
  s.fingerprint = config_fingerprint(cfg_);
  s.at = now();

  SnapshotWriter w;
  SnapshotWriter eph;

  // Machine-level observable state.
  w.u64(cores_.size());
  w.u64(advances_);
  const Rng::State rs = rng_.state();
  for (std::uint64_t x : rs.s) w.u64(x);
  w.f64(rs.cached_normal);
  w.b(rs.has_cached_normal);
  w.u64(seq_by_source_.size());
  for (const auto& c : seq_by_source_) w.u64(c.v);
  for (const auto& c : ipis_by_source_) w.u64(c.v);

  // Per-core observable state (inboxes are captured as live copies
  // below; their logical contents enter the digest via mix_queue).
  for (const auto& c : cores_) {
    w.u64(c->clock_);
    w.b(c->irq_enabled_);
    w.u64(c->cur_irq_origin_);
    w.u64(c->irqs_delivered_);
    w.u64(c->irq_overhead_);
    w.u64(c->steps_);
  }

  faults_.save_state(w, eph);

  // Fast-forward accounting and backoff: wall-clock heuristics, exact
  // restore only.
  eph.u64(ff_cycles_);
  eph.u64(ff_steps_);
  eph.u64(ff_windows_);
  eph.u64(ff_paranoid_);
  eph.u64(ff_cooldown_);
  eph.u64(ff_backoff_);

  // Participant blobs, length-prefixed in registration order.
  w.u64(participants_.size());
  for (const SnapshotParticipant* p : participants_) {
    SnapshotWriter pw;
    p->save_state(pw);
    w.u64(pw.size());
    for (std::uint64_t x : pw.words()) w.u64(x);
  }
  s.participant_count = participants_.size();

  s.words = w.take();
  s.ephemeral = eph.take();

  s.machine_queue = machine_queue_;
  s.cores.resize(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    s.cores[i].irq = cores_[i]->irq_inbox_;
    s.cores[i].callbacks = cores_[i]->callback_inbox_;
    // Stamp each pending timer fire's portable identity into the copy
    // (the live queue keeps only the pointer). Unregistered timers
    // stamp kNoSink; the snapshot stays restorable same-instance, and
    // serialize() rejects it with a diagnostic.
    s.cores[i].callbacks.for_each_mutable([this](CoreEvent& e) {
      if (e.timer != nullptr) e.timer_sink = timer_sink_id(e.timer);
    });
  }
  return s;
}

void Machine::restore(const Snapshot& s) {
  IW_ASSERT_MSG(exec_ctx().machine != this,
                "restore() from inside this machine's execution context");
  IW_ASSERT_MSG(!per_core_drain_active_,
                "restore() during a per-core parallel drain");
  IW_ASSERT_MSG(parallel_ == nullptr || parallel_->quiescent(),
                "restore() with undelivered epoch outbox traffic");
  IW_ASSERT_MSG(s.version == Snapshot::kFormatVersion,
                "snapshot format version mismatch (this build restores "
                "format v2 only)");
  IW_ASSERT_MSG(s.fingerprint == config_fingerprint(cfg_),
                "snapshot fingerprint mismatch (different machine shape "
                "or seeds)");
  IW_ASSERT_MSG(s.cores.size() == cores_.size(),
                "snapshot core count mismatch");
  IW_ASSERT_MSG(s.participant_count == participants_.size(),
                "snapshot participant count mismatch (participants must "
                "be registered identically at snapshot and restore)");

  SnapshotReader r(s.words);
  SnapshotReader re(s.ephemeral);

  IW_ASSERT_MSG(r.u64() == cores_.size(), "snapshot core-section corrupt");
  advances_ = r.u64();
  Rng::State rs;
  for (std::uint64_t& x : rs.s) x = r.u64();
  rs.cached_normal = r.f64();
  rs.has_cached_normal = r.b();
  rng_.set_state(rs);
  IW_ASSERT_MSG(r.u64() == seq_by_source_.size(),
                "snapshot seq-section corrupt");
  for (auto& c : seq_by_source_) c.v = r.u64();
  for (auto& c : ipis_by_source_) c.v = r.u64();

  for (std::size_t i = 0; i < cores_.size(); ++i) {
    Core& c = *cores_[i];
    c.clock_ = r.u64();
    c.irq_enabled_ = r.b();
    c.cur_irq_origin_ = r.u64();
    c.irqs_delivered_ = r.u64();
    c.irq_overhead_ = r.u64();
    c.steps_ = r.u64();
    c.irq_inbox_ = s.cores[i].irq;
    c.callback_inbox_ = s.cores[i].callbacks;
    // Resolve portable timer identities against THIS machine's registry
    // (the whole point of v2: a deserialized snapshot carries ids, not
    // pointers). Same-instance restores resolve to the original timer;
    // cross-instance restores require the target to have registered its
    // timers in the same order — timer_sink() aborts otherwise.
    c.callback_inbox_.for_each_mutable([this](CoreEvent& e) {
      if (e.timer_sink != kNoSink) e.timer = timer_sink(e.timer_sink);
      if (e.sink != kNoSink) (void)event_sink(e.sink);
    });
  }

  faults_.restore_state(r, re);

  ff_cycles_ = re.u64();
  ff_steps_ = re.u64();
  ff_windows_ = re.u64();
  ff_paranoid_ = re.u64();
  ff_cooldown_ = re.u64();
  ff_backoff_ = re.u64();
  ff_plans_.clear();

  IW_ASSERT_MSG(r.u64() == participants_.size(),
                "snapshot participant-section corrupt");
  for (SnapshotParticipant* p : participants_) {
    const std::uint64_t len = r.u64();
    const std::size_t before = r.pos();
    p->restore_state(r);
    IW_ASSERT_MSG(r.pos() - before == len,
                  "snapshot participant section length mismatch (a "
                  "participant's save/restore word counts disagree)");
  }
  IW_ASSERT_MSG(r.remaining() == 0, "snapshot word stream not consumed");
  IW_ASSERT_MSG(re.remaining() == 0,
                "snapshot ephemeral stream not consumed");

  machine_queue_ = s.machine_queue;
  machine_queue_.for_each_mutable([this](Event& e) {
    if (e.sink != kNoSink) (void)event_sink(e.sink);
  });

  // Rebuild the derived scheduling state: the now() caches are a pure
  // function of the (monotone) core clocks, and refresh_frontier marks
  // every core dirty so the next run recomputes all cached next-action
  // times and reseeds the frontier heap.
  Cycles max_clock = 0;
  for (const auto& c : cores_) max_clock = std::max(max_clock, c->clock_);
  if (!per_core_now_.empty()) {
    now_cache_ = 0;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      per_core_now_[i].v = cores_[i]->clock_;
    }
  } else {
    now_cache_ = max_clock;
  }
  refresh_frontier();
}

}  // namespace iw::hwsim
