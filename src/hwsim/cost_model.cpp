#include "hwsim/cost_model.hpp"

namespace iw::hwsim {

CostModel CostModel::knl() {
  CostModel m;
  m.freq = ClockFreq{1.4};
  m.interrupt_dispatch = 1100;
  m.interrupt_return = 680;
  m.ipi_send = 130;
  m.ipi_latency = 600;
  m.lapic_program = 70;
  m.gpr_save = 110;
  m.gpr_restore = 110;
  m.fp_save = 420;  // AVX-512 state on KNL is particularly expensive
  m.fp_restore = 420;
  m.cache_hit = 4;
  m.cache_miss_local = 230;
  m.cache_miss_remote = 230;  // KNL: flat MCDRAM-backed node
  m.tlb_miss_walk = 150;
  m.cache_line_transfer = 120;
  m.mmio_read = 260;
  m.mmio_write = 180;
  m.atomic_rmw = 60;
  m.call_overhead = 8;
  return m;
}

CostModel CostModel::xeon() {
  CostModel m;
  m.freq = ClockFreq{3.3};
  m.interrupt_dispatch = 950;
  m.interrupt_return = 590;
  m.ipi_send = 110;
  m.ipi_latency = 500;
  m.lapic_program = 50;
  m.gpr_save = 80;
  m.gpr_restore = 80;
  m.fp_save = 320;
  m.fp_restore = 320;
  m.cache_hit = 4;
  m.cache_miss_local = 170;
  m.cache_miss_remote = 310;
  m.tlb_miss_walk = 120;
  m.cache_line_transfer = 80;
  m.mmio_read = 200;
  m.mmio_write = 140;
  m.atomic_rmw = 40;
  m.call_overhead = 6;
  return m;
}

CostModel CostModel::xeon8s() {
  CostModel m = CostModel::xeon();
  m.freq = ClockFreq{2.4};        // high-core-count parts clock lower
  m.cache_miss_remote = 420;      // multi-hop UPI
  m.ipi_latency = 900;            // cross-fabric interrupt delivery
  m.cache_line_transfer = 140;
  return m;
}

CostModel CostModel::riscv_openpiton() {
  CostModel m;
  m.freq = ClockFreq{0.8};  // OpenPiton FPGA/ASIC-class clocks
  // RISC-V trap entry is a handful of CSR writes + vectored jump: far
  // cheaper than x64's microcoded dispatch — which also means the
  // *relative* win of branch-injected interrupts shrinks on this core.
  m.interrupt_dispatch = 140;
  m.interrupt_return = 90;   // mret
  m.ipi_send = 60;           // CLINT MSIP write
  m.ipi_latency = 300;
  m.lapic_program = 40;      // CLINT mtimecmp write
  m.gpr_save = 64;           // 32 GPRs, simple stores
  m.gpr_restore = 64;
  m.fp_save = 96;            // F/D state is small next to AVX-512
  m.fp_restore = 96;
  m.cache_hit = 2;
  m.cache_miss_local = 120;
  m.cache_miss_remote = 120;
  m.tlb_miss_walk = 90;      // SV39, shallower walks
  m.cache_line_transfer = 60;
  m.mmio_read = 90;
  m.mmio_write = 70;
  m.atomic_rmw = 30;         // LR/SC pair
  m.call_overhead = 4;
  return m;
}

}  // namespace iw::hwsim
