// POSIX interval timer model (timer_create + hrtimers).
//
// Unlike the LAPIC (absolute cadence, cycle-exact), the kernel timer path
// adds per-expiry slack and cannot sustain periods below a per-CPU floor:
// each expiry costs kernel work (hrtimer interrupt, signal queueing), so
// requested 20 µs periods degrade into best-effort delivery — the Linux
// half of Fig. 3.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "hwsim/event_queue.hpp"
#include "hwsim/snapshot.hpp"
#include "linuxmodel/linux_stack.hpp"

namespace iw::linuxmodel {

/// Expiry callback: runs as kernel work on the owning core.
using TimerCallback = std::function<void(hwsim::Core&, Cycles expiry_time)>;

class PosixTimer final : public hwsim::TimerSink,
                         public hwsim::SnapshotParticipant {
 public:
  PosixTimer(LinuxStack& stack, CoreId core);
  ~PosixTimer();

  /// Arm with the requested period (cycles). The effective period is
  /// max(requested, per-CPU floor); each expiry lands with drawn slack.
  void arm_periodic(Cycles requested_period, TimerCallback cb);

  void stop();

  [[nodiscard]] std::uint64_t expiries() const { return expiries_; }
  [[nodiscard]] Cycles effective_period() const { return effective_period_; }
  [[nodiscard]] bool armed() const { return armed_; }

  // TimerSink: the hrtimer expiry came due on the owning core.
  void on_timer(hwsim::Core& core, Cycles at, std::uint64_t gen) override;

  // SnapshotParticipant: arming state, the hrtimer chain's generation
  // and cursor, and the slack Rng stream (restoring it keeps the
  // post-restore expiry slack draws identical to the uninterrupted
  // run). The in-flight expiry event lives in the core's callback
  // inbox, captured by the machine's queue copy; cb_ is structural.
  void save_state(hwsim::SnapshotWriter& w) const override;
  void restore_state(hwsim::SnapshotReader& r) override;

 private:
  void schedule_next(Cycles ideal);

  LinuxStack& stack_;
  CoreId core_;
  /// Dispatch-table identity (Machine::register_timer_sink): gives
  /// in-flight expiries a portable encoding in snapshot v2.
  hwsim::SinkId sink_id_{hwsim::kNoSink};
  Rng rng_;
  bool armed_{false};
  Cycles effective_period_{0};
  Cycles last_fire_{0};
  /// Ideal (slack-free) time of the single in-flight expiry; the hrtimer
  /// chain schedules the next expiry only from inside the current one,
  /// so one slot suffices.
  Cycles pending_ideal_{0};
  std::uint64_t generation_{0};
  std::uint64_t expiries_{0};
  TimerCallback cb_;
};

}  // namespace iw::linuxmodel
