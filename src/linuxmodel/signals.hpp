// POSIX signal delivery model.
//
// The heartbeat comparison (paper Fig. 2 right, Fig. 3) hinges on what a
// signal *costs* and how late it arrives: the sender crosses into the
// kernel to queue it, the kernel interrupts the target (possibly on
// another CPU, via reschedule IPI), builds a signal frame in user space,
// runs the handler, and sigreturns. Latency is µs-scale with a heavy
// tail — "existing software mechanisms in Linux are unable to achieve
// predictably low latencies for out-of-band event signaling" [36].
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "hwsim/sink.hpp"
#include "hwsim/snapshot.hpp"
#include "linuxmodel/linux_stack.hpp"

namespace iw::linuxmodel {

/// Handler invoked on the target core at frame-entry time.
using SignalHandler = std::function<void(hwsim::Core&)>;

/// Registered signal action: like SignalHandler, but installed once (at
/// setup time) under a stable index so in-flight deliveries can name it
/// by id instead of carrying a closure. `arg` is a caller-chosen word
/// traveling with each send (e.g. the timer fire a heartbeat carries).
using SignalAction = std::function<void(hwsim::Core&, std::uint64_t arg)>;
using SignalActionId = std::uint32_t;
inline constexpr SignalActionId kNoSignalAction = ~SignalActionId{0};

class SignalPath final : public hwsim::SnapshotParticipant,
                         public hwsim::EventSink {
 public:
  explicit SignalPath(LinuxStack& stack);
  ~SignalPath();

  // EventSink: both stages of an in-flight signal — kernel-side
  // queueing on the origin core, then frame+action+sigreturn on the
  // target — encoded as plain data so pending deliveries survive
  // snapshot v2 transport into a fresh machine.
  void on_core_event(hwsim::Core& core, Cycles at,
                     const hwsim::EventPayload& payload) override;

  /// Install an action table entry. Registration order is part of the
  /// deterministic setup contract: a fresh machine hydrating a snapshot
  /// must register the same actions in the same order.
  SignalActionId register_action(SignalAction action);

  /// Send a signal from `sender` to a thread on `target_core`. Charges
  /// the sender's kernel-side send path now and schedules the target's
  /// interruption + frame + handler + sigreturn after a drawn latency.
  void send(hwsim::Core& sender, CoreId target_core, SignalHandler handler);

  /// Portable variant: the in-flight delivery references a registered
  /// action by id (kNoSignalAction = accounting only). Required for any
  /// signal that may be pending at snapshot-v2 capture time.
  void send(hwsim::Core& sender, CoreId target_core, SignalActionId action,
            std::uint64_t arg = 0);

  /// Kernel-originated signal (timer expiry): no user sender to charge;
  /// the kernel-side queueing work happens on `origin_core`'s timeline
  /// via a callback at time `t`.
  void send_from_kernel(CoreId origin_core, Cycles t, CoreId target_core,
                        SignalHandler handler);

  /// Portable variant of send_from_kernel (see send overloads).
  void send_from_kernel(CoreId origin_core, Cycles t, CoreId target_core,
                        SignalActionId action, std::uint64_t arg = 0);

  /// Draw one delivery latency (cycles) — exposed for tests/benches.
  Cycles draw_latency();

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] const LatencyHistogram& latency_hist() const {
    return latency_hist_;
  }

  // SnapshotParticipant: the latency Rng stream, counters, and the
  // latency histogram. In-flight deliveries sent by action id are
  // plain-data sink events in core inboxes (portable); ones sent with
  // closures are captured by value and restore same-instance only.
  void save_state(hwsim::SnapshotWriter& w) const override;
  void restore_state(hwsim::SnapshotReader& r) override;

 private:
  void deliver_at(Cycles queue_time, CoreId target_core,
                  SignalHandler handler);
  void deliver_at(Cycles queue_time, CoreId target_core,
                  SignalActionId action, std::uint64_t arg);

  LinuxStack& stack_;
  Rng rng_;
  hwsim::SinkId sink_id_{hwsim::kNoSink};
  /// Structural: rebuilt by setup code, never serialized.
  std::vector<SignalAction> actions_;
  std::uint64_t sent_{0};
  std::uint64_t delivered_{0};
  LatencyHistogram latency_hist_;
};

}  // namespace iw::linuxmodel
