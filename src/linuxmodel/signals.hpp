// POSIX signal delivery model.
//
// The heartbeat comparison (paper Fig. 2 right, Fig. 3) hinges on what a
// signal *costs* and how late it arrives: the sender crosses into the
// kernel to queue it, the kernel interrupts the target (possibly on
// another CPU, via reschedule IPI), builds a signal frame in user space,
// runs the handler, and sigreturns. Latency is µs-scale with a heavy
// tail — "existing software mechanisms in Linux are unable to achieve
// predictably low latencies for out-of-band event signaling" [36].
#pragma once

#include <cstdint>
#include <functional>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "hwsim/snapshot.hpp"
#include "linuxmodel/linux_stack.hpp"

namespace iw::linuxmodel {

/// Handler invoked on the target core at frame-entry time.
using SignalHandler = std::function<void(hwsim::Core&)>;

class SignalPath final : public hwsim::SnapshotParticipant {
 public:
  explicit SignalPath(LinuxStack& stack);
  ~SignalPath();

  /// Send a signal from `sender` to a thread on `target_core`. Charges
  /// the sender's kernel-side send path now and schedules the target's
  /// interruption + frame + handler + sigreturn after a drawn latency.
  void send(hwsim::Core& sender, CoreId target_core, SignalHandler handler);

  /// Kernel-originated signal (timer expiry): no user sender to charge;
  /// the kernel-side queueing work happens on `origin_core`'s timeline
  /// via a callback at time `t`.
  void send_from_kernel(CoreId origin_core, Cycles t, CoreId target_core,
                        SignalHandler handler);

  /// Draw one delivery latency (cycles) — exposed for tests/benches.
  Cycles draw_latency();

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] const LatencyHistogram& latency_hist() const {
    return latency_hist_;
  }

  // SnapshotParticipant: the latency Rng stream, counters, and the
  // latency histogram. In-flight deliveries are closures in core
  // callback inboxes, captured by the machine's queue copies.
  void save_state(hwsim::SnapshotWriter& w) const override;
  void restore_state(hwsim::SnapshotReader& r) override;

 private:
  void deliver_at(Cycles queue_time, CoreId target_core,
                  SignalHandler handler);

  LinuxStack& stack_;
  Rng rng_;
  std::uint64_t sent_{0};
  std::uint64_t delivered_{0};
  LatencyHistogram latency_hist_;
};

}  // namespace iw::linuxmodel
