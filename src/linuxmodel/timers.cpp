#include "linuxmodel/timers.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "hwsim/core.hpp"

namespace iw::linuxmodel {

PosixTimer::PosixTimer(LinuxStack& stack, CoreId core)
    : stack_(stack), core_(core), rng_(stack.machine().rng().split()) {
  stack_.machine().register_snapshot_participant(this);
  sink_id_ = stack_.machine().register_timer_sink(this);
}

PosixTimer::~PosixTimer() {
  stack_.machine().unregister_timer_sink(sink_id_);
  stack_.machine().unregister_snapshot_participant(this);
}

void PosixTimer::save_state(hwsim::SnapshotWriter& w) const {
  hwsim::save_rng(w, rng_);
  w.b(armed_);
  w.u64(effective_period_);
  w.u64(last_fire_);
  w.u64(pending_ideal_);
  w.u64(generation_);
  w.u64(expiries_);
}

void PosixTimer::restore_state(hwsim::SnapshotReader& r) {
  hwsim::restore_rng(r, rng_);
  armed_ = r.b();
  effective_period_ = r.u64();
  last_fire_ = r.u64();
  pending_ideal_ = r.u64();
  generation_ = r.u64();
  expiries_ = r.u64();
}

void PosixTimer::arm_periodic(Cycles requested_period, TimerCallback cb) {
  IW_ASSERT(requested_period > 0);
  const auto& freq = stack_.machine().costs().freq;
  const Cycles floor =
      freq.us_to_cycles(stack_.costs().timer_min_period_us);
  effective_period_ = std::max(requested_period, floor);
  cb_ = std::move(cb);
  armed_ = true;
  ++generation_;
  last_fire_ = stack_.machine().core(core_).clock();
  schedule_next(last_fire_ + effective_period_);
}

void PosixTimer::stop() {
  armed_ = false;
  ++generation_;
}

void PosixTimer::schedule_next(Cycles ideal) {
  auto& core = stack_.machine().core(core_);
  const auto& freq = stack_.machine().costs().freq;
  // Expiry slack: the hrtimer fires late by a lognormal amount.
  const Cycles slack = freq.us_to_cycles(
      rng_.lognormal_median(stack_.costs().timer_slack_us, 0.6));
  pending_ideal_ = ideal;
  core.post_timer(ideal + slack, this, generation_);
}

void PosixTimer::on_timer(hwsim::Core& core, Cycles at, std::uint64_t gen) {
  if (!armed_ || gen != generation_) return;
  ++expiries_;
  // hrtimer interrupt + expiry processing on this CPU.
  core.consume(stack_.machine().costs().interrupt_dispatch / 2 + 2400);
  if (cb_) cb_(core, at);
  // Next expiry: hrtimers re-arm relative to *now* when they missed
  // their slot (period coalescing), unlike the LAPIC's absolute mode.
  const Cycles next_ideal =
      std::max(pending_ideal_ + effective_period_, core.clock());
  schedule_next(next_ideal);
}

}  // namespace iw::linuxmodel
