#include "linuxmodel/linux_stack.hpp"

namespace iw::linuxmodel {

LinuxCosts LinuxCosts::knl() {
  return LinuxCosts{};  // defaults are calibrated to the KNL platform
}

LinuxCosts LinuxCosts::xeon() {
  LinuxCosts c;
  c.syscall_entry = 300;
  c.syscall_exit = 300;
  c.mitigation = 550;
  c.switch_extra = 2300;
  c.signal_latency_median_us = 1.8;
  c.timer_min_period_us = 3.0;
  c.thread_create = 45'000;
  c.tick_period = 3'300'000;  // 1 kHz at 3.3 GHz
  c.tick_cost = 6'000;
  c.rr_slice = 19'800'000;  // ~6 ms at 3.3 GHz
  return c;
}

LinuxStack::LinuxStack(hwsim::Machine& machine, LinuxCosts costs)
    : machine_(machine), costs_(costs) {
  nautilus::KernelConfig kc;
  kc.rr_slice = costs.rr_slice;
  kc.tick_period = costs.tick_period;
  kc.tick_always_on = true;
  kc.tick_cost = costs.tick_cost;
  kc.switch_extra = costs.switch_extra;
  // Linux primitive path lengths (contrast with Nautilus defaults).
  kc.sched_pick_cost = 240;      // CFS rbtree + lock
  kc.sched_pick_rt_cost = 260;   // rt sched class
  kc.thread_create_cost = costs.thread_create;
  kc.wake_cost = costs.futex_wake;
  kernel_ = std::make_unique<nautilus::Kernel>(machine, kc);
}

nautilus::Thread* LinuxStack::spawn_user_thread(nautilus::ThreadConfig cfg,
                                                hwsim::Core* creator) {
  if (creator != nullptr) syscall(*creator);
  return kernel_->spawn(std::move(cfg), creator);
}

}  // namespace iw::linuxmodel
