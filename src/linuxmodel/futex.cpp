#include "linuxmodel/futex.hpp"

namespace iw::linuxmodel {

nautilus::WaitQueue& FutexTable::queue_for(Addr addr) {
  auto it = queues_.find(addr);
  if (it == queues_.end()) {
    it = queues_
             .emplace(addr, std::make_unique<nautilus::WaitQueue>(
                                stack_.kernel()))
             .first;
  }
  return *it->second;
}

nautilus::StepResult FutexTable::wait(hwsim::Core& core, Addr addr,
                                      Cycles work_done) {
  stack_.syscall(core);
  core.consume(stack_.costs().futex_wait);
  return nautilus::StepResult::block(work_done, &queue_for(addr));
}

unsigned FutexTable::wake(hwsim::Core& core, Addr addr, unsigned n) {
  stack_.syscall(core);
  // futex_wake kernel-side cost is charged per woken thread via the
  // kernel's wake_cost (configured to the futex path in LinuxStack).
  return queue_for(addr).signal(core, n);
}

unsigned FutexTable::wake_all(hwsim::Core& core, Addr addr) {
  stack_.syscall(core);
  return queue_for(addr).broadcast(core);
}

std::size_t FutexTable::waiters(Addr addr) const {
  auto it = queues_.find(addr);
  return it == queues_.end() ? 0 : it->second->waiter_count();
}

}  // namespace iw::linuxmodel
