#include "linuxmodel/signals.hpp"

#include "common/assert.hpp"
#include "hwsim/core.hpp"

namespace iw::linuxmodel {

namespace {
// Payload word 0 tags which half of the two-stage delivery this is.
constexpr std::uint64_t kStageKernelQueue = 0;
constexpr std::uint64_t kStageDeliver = 1;
}  // namespace

SignalPath::SignalPath(LinuxStack& stack)
    : stack_(stack), rng_(stack.machine().rng().split()) {
  stack_.machine().register_snapshot_participant(this);
  sink_id_ = stack_.machine().register_event_sink(this);
}

SignalPath::~SignalPath() {
  stack_.machine().unregister_event_sink(sink_id_);
  stack_.machine().unregister_snapshot_participant(this);
}

SignalActionId SignalPath::register_action(SignalAction action) {
  actions_.push_back(std::move(action));
  return static_cast<SignalActionId>(actions_.size() - 1);
}

void SignalPath::on_core_event(hwsim::Core& core, Cycles,
                               const hwsim::EventPayload& payload) {
  const auto action = static_cast<SignalActionId>(payload.w[2]);
  const std::uint64_t arg = payload.w[3];
  if (payload.w[0] == kStageKernelQueue) {
    // Kernel-side queueing on the origin core; the target's delivery is
    // scheduled from here so the latency draw happens in origin order.
    core.consume(stack_.costs().signal_kernel_send);
    deliver_at(core.clock(), static_cast<CoreId>(payload.w[1]), action, arg);
    return;
  }
  const auto& c = stack_.costs();
  const Cycles queue_time = payload.w[1];
  // The target is interrupted: frame setup, action, sigreturn.
  core.consume(c.signal_frame_setup);
  latency_hist_.add(core.clock() - queue_time);
  ++delivered_;
  if (action != kNoSignalAction) {
    IW_ASSERT_MSG(action < actions_.size(),
                  "signal delivery references an unregistered action id");
    actions_[action](core, arg);
  }
  core.consume(c.sigreturn);
}

void SignalPath::save_state(hwsim::SnapshotWriter& w) const {
  hwsim::save_rng(w, rng_);
  w.u64(sent_);
  w.u64(delivered_);
  const LatencyHistogram::State hs = latency_hist_.state();
  w.u64(hs.counts.size());
  for (std::uint64_t c : hs.counts) w.u64(c);
  w.u64(hs.total_count);
  w.u64(hs.min);
  w.u64(hs.max);
  w.f64(hs.sum);
}

void SignalPath::restore_state(hwsim::SnapshotReader& r) {
  hwsim::restore_rng(r, rng_);
  sent_ = r.u64();
  delivered_ = r.u64();
  LatencyHistogram::State hs;
  hs.counts.resize(r.u64());
  for (std::uint64_t& c : hs.counts) c = r.u64();
  hs.total_count = r.u64();
  hs.min = r.u64();
  hs.max = r.u64();
  hs.sum = r.f64();
  latency_hist_.set_state(hs);
}

Cycles SignalPath::draw_latency() {
  const auto& c = stack_.costs();
  const auto& freq = stack_.machine().costs().freq;
  // Body: lognormal around the median; tail: bounded Pareto. Mix 85/15.
  double us;
  if (rng_.chance(0.85)) {
    us = rng_.lognormal_median(c.signal_latency_median_us,
                               c.signal_latency_sigma);
  } else {
    us = rng_.heavy_tail(c.signal_latency_median_us * 2.0,
                         c.signal_tail_alpha, c.signal_latency_cap_us);
  }
  return freq.us_to_cycles(us);
}

void SignalPath::send(hwsim::Core& sender, CoreId target_core,
                      SignalHandler handler) {
  const auto& c = stack_.costs();
  // tgkill(): user->kernel crossing + queueing work, charged to sender.
  stack_.syscall(sender);
  sender.consume(c.signal_kernel_send);
  ++sent_;
  deliver_at(sender.clock(), target_core, std::move(handler));
}

void SignalPath::send(hwsim::Core& sender, CoreId target_core,
                      SignalActionId action, std::uint64_t arg) {
  const auto& c = stack_.costs();
  stack_.syscall(sender);
  sender.consume(c.signal_kernel_send);
  ++sent_;
  deliver_at(sender.clock(), target_core, action, arg);
}

void SignalPath::send_from_kernel(CoreId origin_core, Cycles t,
                                  CoreId target_core, SignalHandler handler) {
  const auto& c = stack_.costs();
  auto& origin = stack_.machine().core(origin_core);
  ++sent_;
  origin.post_callback(t, [this, &origin, target_core,
                           h = std::move(handler)]() mutable {
    origin.consume(stack_.costs().signal_kernel_send);
    deliver_at(origin.clock(), target_core, std::move(h));
  });
  (void)c;
}

void SignalPath::send_from_kernel(CoreId origin_core, Cycles t,
                                  CoreId target_core, SignalActionId action,
                                  std::uint64_t arg) {
  ++sent_;
  hwsim::EventPayload p;
  p.w[0] = kStageKernelQueue;
  p.w[1] = target_core;
  p.w[2] = action;
  p.w[3] = arg;
  stack_.machine().core(origin_core).post_event(t, sink_id_, p);
}

void SignalPath::deliver_at(Cycles queue_time, CoreId target_core,
                            SignalHandler handler) {
  const Cycles latency = draw_latency();
  auto& target = stack_.machine().core(target_core);
  target.post_callback(
      queue_time + latency,
      [this, &target, queue_time, h = std::move(handler)]() {
        const auto& c = stack_.costs();
        // The target is interrupted: frame setup, handler, sigreturn.
        target.consume(c.signal_frame_setup);
        latency_hist_.add(target.clock() - queue_time);
        ++delivered_;
        if (h) h(target);
        target.consume(c.sigreturn);
      });
}

void SignalPath::deliver_at(Cycles queue_time, CoreId target_core,
                            SignalActionId action, std::uint64_t arg) {
  const Cycles latency = draw_latency();
  hwsim::EventPayload p;
  p.w[0] = kStageDeliver;
  p.w[1] = queue_time;
  p.w[2] = action;
  p.w[3] = arg;
  stack_.machine().core(target_core).post_event(queue_time + latency,
                                                sink_id_, p);
}

}  // namespace iw::linuxmodel
