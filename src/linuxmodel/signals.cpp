#include "linuxmodel/signals.hpp"

#include "hwsim/core.hpp"

namespace iw::linuxmodel {

SignalPath::SignalPath(LinuxStack& stack)
    : stack_(stack), rng_(stack.machine().rng().split()) {
  stack_.machine().register_snapshot_participant(this);
}

SignalPath::~SignalPath() {
  stack_.machine().unregister_snapshot_participant(this);
}

void SignalPath::save_state(hwsim::SnapshotWriter& w) const {
  hwsim::save_rng(w, rng_);
  w.u64(sent_);
  w.u64(delivered_);
  const LatencyHistogram::State hs = latency_hist_.state();
  w.u64(hs.counts.size());
  for (std::uint64_t c : hs.counts) w.u64(c);
  w.u64(hs.total_count);
  w.u64(hs.min);
  w.u64(hs.max);
  w.f64(hs.sum);
}

void SignalPath::restore_state(hwsim::SnapshotReader& r) {
  hwsim::restore_rng(r, rng_);
  sent_ = r.u64();
  delivered_ = r.u64();
  LatencyHistogram::State hs;
  hs.counts.resize(r.u64());
  for (std::uint64_t& c : hs.counts) c = r.u64();
  hs.total_count = r.u64();
  hs.min = r.u64();
  hs.max = r.u64();
  hs.sum = r.f64();
  latency_hist_.set_state(hs);
}

Cycles SignalPath::draw_latency() {
  const auto& c = stack_.costs();
  const auto& freq = stack_.machine().costs().freq;
  // Body: lognormal around the median; tail: bounded Pareto. Mix 85/15.
  double us;
  if (rng_.chance(0.85)) {
    us = rng_.lognormal_median(c.signal_latency_median_us,
                               c.signal_latency_sigma);
  } else {
    us = rng_.heavy_tail(c.signal_latency_median_us * 2.0,
                         c.signal_tail_alpha, c.signal_latency_cap_us);
  }
  return freq.us_to_cycles(us);
}

void SignalPath::send(hwsim::Core& sender, CoreId target_core,
                      SignalHandler handler) {
  const auto& c = stack_.costs();
  // tgkill(): user->kernel crossing + queueing work, charged to sender.
  stack_.syscall(sender);
  sender.consume(c.signal_kernel_send);
  ++sent_;
  deliver_at(sender.clock(), target_core, std::move(handler));
}

void SignalPath::send_from_kernel(CoreId origin_core, Cycles t,
                                  CoreId target_core, SignalHandler handler) {
  const auto& c = stack_.costs();
  auto& origin = stack_.machine().core(origin_core);
  ++sent_;
  origin.post_callback(t, [this, &origin, target_core,
                           h = std::move(handler)]() mutable {
    origin.consume(stack_.costs().signal_kernel_send);
    deliver_at(origin.clock(), target_core, std::move(h));
  });
  (void)c;
}

void SignalPath::deliver_at(Cycles queue_time, CoreId target_core,
                            SignalHandler handler) {
  const Cycles latency = draw_latency();
  auto& target = stack_.machine().core(target_core);
  target.post_callback(
      queue_time + latency,
      [this, &target, queue_time, h = std::move(handler)]() {
        const auto& c = stack_.costs();
        // The target is interrupted: frame setup, handler, sigreturn.
        target.consume(c.signal_frame_setup);
        latency_hist_.add(target.clock() - queue_time);
        ++delivered_;
        if (h) h(target);
        target.consume(c.sigreturn);
      });
}

}  // namespace iw::linuxmodel
