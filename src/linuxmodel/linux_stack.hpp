// The commodity-stack baseline: a Linux-profiled kernel on the same
// simulated machine.
//
// Structurally, user threads on Linux are also "threads on cores" — what
// distinguishes the commodity stack in every one of the paper's
// comparisons is its *cost profile and noise*:
//   * kernel/user crossings (syscalls, Spectre/Meltdown-era mitigation),
//   * heavyweight context switches (~5000 cycles with FP on KNL [29]),
//   * an always-on housekeeping tick stealing CPU,
//   * signal-based event delivery with µs-scale, heavy-tailed latency,
//   * futex-based blocking primitives that cross into the kernel,
//   * demand paging with TLB pressure (mem::DemandPaging).
// LinuxStack therefore owns a nautilus::Kernel configured with the Linux
// profile and layers the signal/timer/futex machinery beside it. This is
// the modeling substitution recorded in DESIGN.md §1.
#pragma once

#include <memory>

#include "common/types.hpp"
#include "hwsim/machine.hpp"
#include "nautilus/kernel.hpp"

namespace iw::linuxmodel {

struct LinuxCosts {
  // Kernel crossing (each direction) + mitigation flushes.
  Cycles syscall_entry{350};
  Cycles syscall_exit{350};
  Cycles mitigation{600};  // KPTI/IBRS-era per-crossing overhead

  // Scheduler path beyond register save/restore (runqueue locks, cgroup
  // and mm bookkeeping, CFS vruntime update, mitigation flushes on the
  // return-to-user edge). Calibrated so a full preemptive non-RT FP
  // transition — timer interrupt dispatch + save/restore + scheduler —
  // lands near the ~5000 cycles the paper reports for KNL [29].
  Cycles switch_extra{1950};

  // Signal machinery. Calibrated on the KNL profile so heartbeat-style
  // delivery costs land in the paper's band (13-22% mechanism overhead
  // at ♥=100 µs): slow in-order cores make the signal path expensive,
  // per the asynchronous-events measurements the paper cites [36].
  Cycles signal_kernel_send{3800};   // kernel-side queueing per signal
  Cycles signal_frame_setup{8800};   // interrupt target + build user frame
  Cycles sigreturn{4600};            // return-to-kernel-and-back
  double signal_latency_median_us{2.5};  // queue -> handler-entry latency
  double signal_latency_sigma{0.55};     // lognormal body spread
  double signal_tail_alpha{1.1};         // heavy tail exponent
  double signal_latency_cap_us{300.0};

  // POSIX/hrtimer behavior.
  double timer_min_period_us{4.0};  // per-CPU sustainable expiry floor
  double timer_slack_us{1.2};       // median added expiry slack

  // Futex path (syscall + hash-bucket lock + plist ops).
  Cycles futex_wake{1'600};
  Cycles futex_wait{2'000};

  // Thread management.
  Cycles thread_create{55'000};  // clone + VM setup + scheduler admission

  // Housekeeping tick.
  Cycles tick_period{1'400'000};  // 1 kHz at 1.4 GHz
  Cycles tick_cost{6'500};        // timekeeping + RCU + sched housekeeping

  // CFS default slice.
  Cycles rr_slice{8'400'000};  // ~6 ms at 1.4 GHz

  /// Presets matched to the two hardware cost models.
  static LinuxCosts knl();
  static LinuxCosts xeon();
};

class LinuxStack {
 public:
  LinuxStack(hwsim::Machine& machine, LinuxCosts costs = LinuxCosts::knl());

  [[nodiscard]] hwsim::Machine& machine() { return machine_; }
  [[nodiscard]] nautilus::Kernel& kernel() { return *kernel_; }
  [[nodiscard]] const LinuxCosts& costs() const { return costs_; }

  /// Install as driver on all cores.
  void attach() { kernel_->attach(); }

  /// Charge one user->kernel->user round trip to `core`.
  void syscall(hwsim::Core& core) const {
    core.consume(costs_.syscall_entry + costs_.mitigation +
                 costs_.syscall_exit);
    ++const_cast<LinuxStack*>(this)->syscalls_;
  }

  /// pthread_create-equivalent: spawn a user thread (charges the clone
  /// path to the creator if given).
  nautilus::Thread* spawn_user_thread(nautilus::ThreadConfig cfg,
                                      hwsim::Core* creator = nullptr);

  [[nodiscard]] std::uint64_t syscall_count() const { return syscalls_; }

 private:
  hwsim::Machine& machine_;
  LinuxCosts costs_;
  std::unique_ptr<nautilus::Kernel> kernel_;
  std::uint64_t syscalls_{0};
};

}  // namespace iw::linuxmodel
