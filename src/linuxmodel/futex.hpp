// Futex table: addr-keyed wait queues with syscall-priced wait/wake.
// This is what pthread mutexes/condvars and OpenMP barriers bottom out
// in on the commodity stack.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hpp"
#include "linuxmodel/linux_stack.hpp"
#include "nautilus/event.hpp"

namespace iw::linuxmodel {

class FutexTable {
 public:
  explicit FutexTable(LinuxStack& stack) : stack_(stack) {}

  /// Build the StepResult a user thread returns to FUTEX_WAIT on `addr`.
  /// Charges the syscall + kernel wait path to the calling core first.
  nautilus::StepResult wait(hwsim::Core& core, Addr addr, Cycles work_done);

  /// FUTEX_WAKE up to `n` waiters of `addr` from `core`.
  unsigned wake(hwsim::Core& core, Addr addr, unsigned n = 1);

  /// Wake everyone (barrier release).
  unsigned wake_all(hwsim::Core& core, Addr addr);

  [[nodiscard]] std::size_t waiters(Addr addr) const;

 private:
  nautilus::WaitQueue& queue_for(Addr addr);

  LinuxStack& stack_;
  std::unordered_map<Addr, std::unique_ptr<nautilus::WaitQueue>> queues_;
};

}  // namespace iw::linuxmodel
