#include "passes/guard_hoisting.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "ir/dominators.hpp"
#include "ir/loops.hpp"
#include "passes/provenance.hpp"

namespace iw::passes {

namespace {

/// Is register `r` assigned anywhere inside the loop?
bool defined_in_loop(const ir::Function& f, const ir::Loop& loop,
                     ir::Reg r) {
  if (r == ir::kNoReg) return false;
  for (ir::BlockId b : loop.blocks) {
    const auto& bb = f.block(b);
    for (const auto& i : bb.body) {
      if (i.r == r) return true;
    }
    if (bb.term.r == r) return true;
  }
  return false;
}

}  // namespace

HoistStats hoist_guards(ir::Function& f) {
  HoistStats stats;

  // --- In-block aggregation: a guard is redundant if an earlier guard in
  // the same block covers the same base with no intervening redefinition
  // of the base register. The surviving guard widens to the union span.
  for (std::size_t bi = 0; bi < f.num_blocks(); ++bi) {
    auto& bb = f.block(static_cast<ir::BlockId>(bi));
    // (base reg -> index of the covering guard in bb.body)
    std::vector<std::pair<ir::Reg, std::size_t>> active;
    for (std::size_t k = 0; k < bb.body.size(); ++k) {
      auto& i = bb.body[k];
      if (i.op == ir::Op::kGuard) {
        auto it = std::find_if(active.begin(), active.end(),
                               [&](auto& p) { return p.first == i.a; });
        if (it != active.end()) {
          auto& cover = bb.body[it->second];
          // Widen the covering guard to include this access.
          const auto lo = std::min(cover.imm, i.imm);
          const auto hi =
              std::max(cover.imm + cover.imm2, i.imm + i.imm2);
          cover.imm = lo;
          cover.imm2 = hi - lo;
          cover.b = std::max(cover.b, i.b);  // write dominates read
          bb.body.erase(bb.body.begin() + static_cast<std::ptrdiff_t>(k));
          --k;
          ++stats.aggregated;
          continue;
        }
        active.emplace_back(i.a, k);
        continue;
      }
      if (i.r != ir::kNoReg) {
        // Redefinition kills coverage for that base.
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](auto& p) { return p.first == i.r; }),
                     active.end());
      }
    }
  }

  // --- Loop hoisting, innermost loops first so guards bubble outward
  // through nested loops when the allocation root is invariant at every
  // level. The root is recovered by pointer-provenance tracing: the
  // access address may be recomputed every iteration (base + i*8), but
  // as long as it derives from a loop-invariant allocation root, one
  // whole-allocation check outside the loop covers every access.
  ProvenanceAnalysis pa(f);
  ir::DominatorTree dt(f);
  ir::LoopInfo li(f, dt);
  std::vector<ir::Loop*> by_depth;
  for (const auto& l : li.loops()) by_depth.push_back(l.get());
  std::sort(by_depth.begin(), by_depth.end(),
            [](const ir::Loop* a, const ir::Loop* b) {
              return a->depth > b->depth;
            });

  for (ir::Loop* loop : by_depth) {
    const ir::BlockId ph = li.preheader(f, *loop);
    if (ph == -1) continue;  // no unique preheader: leave guards in place
    std::set<ir::Reg> hoist_bases;
    for (ir::BlockId b : loop->blocks) {
      auto& bb = f.block(b);
      for (std::size_t k = 0; k < bb.body.size(); ++k) {
        auto& i = bb.body[k];
        if (i.op != ir::Op::kGuard && i.op != ir::Op::kGuardRange) continue;
        const ir::Reg root = pa.root_of(i.a);
        if (root == ir::kNoReg || defined_in_loop(f, *loop, root)) continue;
        hoist_bases.insert(root);
        bb.body.erase(bb.body.begin() + static_cast<std::ptrdiff_t>(k));
        --k;
        ++stats.hoisted;
      }
    }
    auto& phb = f.block(ph);
    for (ir::Reg base : hoist_bases) {
      // Dedupe: the preheader may already range-guard this base.
      const bool exists = std::any_of(
          phb.body.begin(), phb.body.end(), [&](const ir::Instr& i) {
            return i.op == ir::Op::kGuardRange && i.a == base;
          });
      if (exists) continue;
      ir::Instr g = ir::Instr::make(ir::Op::kGuardRange);
      g.a = base;
      phb.body.push_back(g);
      ++stats.range_guards;
    }
  }
  return stats;
}

}  // namespace iw::passes
