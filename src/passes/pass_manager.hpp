// Minimal pass manager: named function passes, structural verification
// after each, and a run log for tests.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace iw::passes {

class PassManager {
 public:
  using FnPass = std::function<void(ir::Function&)>;

  void add(std::string name, FnPass pass);

  /// Run all passes over `f` in order; asserts if any pass breaks
  /// structural validity (verify() against `m` when given).
  void run(ir::Function& f, const ir::Module* m = nullptr);

  /// Run over every function in the module.
  void run_module(ir::Module& m);

  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  std::vector<std::pair<std::string, FnPass>> passes_;
  std::vector<std::string> log_;
};

}  // namespace iw::passes
