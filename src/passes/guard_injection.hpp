// CARAT guard injection (paper §IV-A, naive phase).
//
// "Conceptually, protection check code is introduced at each read or
// write" — this pass does exactly that: every kLoad/kStore gets a kGuard
// immediately before it, checking the accessed range with the access's
// width and direction. GuardHoisting then recovers the <6% overhead by
// aggregating and hoisting these checks.
#pragma once

#include "ir/function.hpp"

namespace iw::passes {

struct GuardStats {
  unsigned guards_inserted{0};
  unsigned loads_guarded{0};
  unsigned stores_guarded{0};
};

GuardStats inject_guards(ir::Function& f);

/// Count guards of both kinds currently in `f` (for overhead reporting).
unsigned count_guards(const ir::Function& f);

}  // namespace iw::passes
