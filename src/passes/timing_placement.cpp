#include "passes/timing_placement.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "ir/dominators.hpp"
#include "ir/loops.hpp"
#include "passes/path_length.hpp"

namespace iw::passes {

namespace {

bool block_has_call(const ir::BasicBlock& bb, ir::Op op) {
  for (const auto& i : bb.body) {
    if (i.op == op) return true;
  }
  return false;
}

ir::Instr make_check(ir::Op op, Cycles fire_threshold) {
  ir::Instr call = ir::Instr::make(op);
  call.imm = static_cast<std::int64_t>(fire_threshold);
  return call;
}

}  // namespace

PlacementStats place_periodic_calls(ir::Function& f,
                                    const PlacementOptions& opts) {
  IW_ASSERT(opts.budget >= 16);
  PlacementStats stats;
  const Cycles half = opts.budget / 2;

  auto count_insert = [&stats, &opts](Cycles threshold) {
    ++stats.calls_inserted;
    if (threshold > 0) {
      ++stats.amortized_calls;
      stats.max_threshold = std::max(stats.max_threshold, threshold);
    }
    (void)opts;
  };

  // 1. Entry call: unconditional fire (the caller's guarantee hands the
  //    elapsed-time clock off here).
  if (opts.entry_call) {
    auto& entry = f.block(f.entry());
    entry.body.insert(entry.body.begin(), make_check(opts.call_op, 0));
    count_insert(0);
  }

  // 2. Straight-line coverage within each block: a thresholded check
  //    wherever more than half a budget of work accumulates since the
  //    last check in the block.
  for (std::size_t bi = 0; bi < f.num_blocks(); ++bi) {
    auto& bb = f.block(static_cast<ir::BlockId>(bi));
    Cycles run = 0;
    for (std::size_t k = 0; k < bb.body.size(); ++k) {
      if (bb.body[k].op == opts.call_op) {
        run = 0;
        continue;
      }
      run += bb.body[k].cost;
      if (run > half) {
        bb.body.insert(bb.body.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                       make_check(opts.call_op, half));
        count_insert(half);
        ++k;
        run = 0;
      }
    }
  }

  // 3. Every loop header gets a thresholded check (unless the loop body
  //    already contains one): the check visits every iteration for the
  //    cost of a compare, and fires only once at least half a budget of
  //    *elapsed cycles* has passed — the global-clock semantics of
  //    compiler-based timing, immune to loop re-entry effects.
  {
    ir::DominatorTree dt(f);
    ir::LoopInfo li(f, dt);
    for (const auto& loop : li.loops()) {
      bool covered = false;
      for (ir::BlockId b : loop->blocks) {
        if (block_has_call(f.block(b), opts.call_op)) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      auto& header = f.block(loop->header);
      header.body.insert(header.body.begin(),
                         make_check(opts.call_op, half));
      count_insert(half);
    }
  }

  // 4. Fixpoint refinement: the guarantee is
  //      dynamic gap <= (max check spacing) + (fire threshold)
  //                  <= half + half = budget,
  //    so drive the static *spacing* (static_max_gap treats every check
  //    as a marker) down to half by inserting block-entry checks where
  //    the inflowing gap overflows. Each round inserts at least one
  //    check, so this terminates.
  for (int round = 0; round < 64; ++round) {
    GapAnalysis ga = analyze_gaps(f, is_op(opts.call_op));
    if (ga.max_gap != kNever && ga.max_gap <= half) break;
    bool inserted = false;
    for (std::size_t bi = 0; bi < f.num_blocks(); ++bi) {
      const auto id = static_cast<ir::BlockId>(bi);
      if (!ga.reachable[id]) continue;
      const auto info = block_gap_info(f.block(id), is_op(opts.call_op));
      const Cycles through =
          ga.in_gap[id] +
          (info.has_marker ? info.before_first : info.total);
      if (through > half && ga.in_gap[id] > 0) {
        auto& bb = f.block(id);
        bb.body.insert(bb.body.begin(), make_check(opts.call_op, half));
        count_insert(half);
        inserted = true;
      }
    }
    if (!inserted) {
      // Residual overflow lives inside single blocks with in_gap == 0;
      // tighten intra-block spacing there.
      for (std::size_t bi = 0; bi < f.num_blocks(); ++bi) {
        auto& bb = f.block(static_cast<ir::BlockId>(bi));
        Cycles run = 0;
        for (std::size_t k = 0; k < bb.body.size(); ++k) {
          if (bb.body[k].op == opts.call_op) {
            run = 0;
            continue;
          }
          run += bb.body[k].cost;
          if (run > half) {
            bb.body.insert(
                bb.body.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                make_check(opts.call_op, half));
            count_insert(half);
            inserted = true;
            ++k;
            run = 0;
          }
        }
      }
      if (!inserted) break;  // nothing left to tighten
    }
  }

  return stats;
}

}  // namespace iw::passes
