#include "passes/virtine_lowering.hpp"

namespace iw::passes {

VirtineLoweringStats lower_virtine_calls(
    ir::Module& m, const std::set<ir::FuncId>& virtines) {
  VirtineLoweringStats stats;
  for (std::size_t fi = 0; fi < m.num_functions(); ++fi) {
    const auto fid = static_cast<ir::FuncId>(fi);
    if (virtines.contains(fid)) continue;  // intra-virtine calls stay
    auto& f = m.function(fid);
    for (std::size_t bi = 0; bi < f.num_blocks(); ++bi) {
      auto& bb = f.block(static_cast<ir::BlockId>(bi));
      for (auto& i : bb.body) {
        if (i.op == ir::Op::kCall &&
            virtines.contains(static_cast<ir::FuncId>(i.imm))) {
          i.op = ir::Op::kVirtineCall;
          i.cost = ir::default_cost(ir::Op::kVirtineCall);
          ++stats.calls_lowered;
        }
      }
    }
  }
  return stats;
}

}  // namespace iw::passes
