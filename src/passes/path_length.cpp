#include "passes/path_length.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace iw::passes {

MarkerPred is_op(ir::Op op) {
  return [op](const ir::Instr& i) { return i.op == op; };
}

BlockGapInfo block_gap_info(const ir::BasicBlock& bb,
                            const MarkerPred& pred) {
  BlockGapInfo info;
  Cycles run = 0;  // cycles since block entry or last marker
  bool seen = false;
  for (const auto& i : bb.body) {
    if (pred(i)) {
      if (!seen) {
        info.before_first = run;
        seen = true;
      } else {
        info.max_internal = std::max(info.max_internal, run);
      }
      run = 0;
      // The marker's own cost counts toward the following gap.
      run += i.cost;
    } else {
      run += i.cost;
    }
    info.total += i.cost;
  }
  run += bb.term.cost;
  info.total += bb.term.cost;
  info.has_marker = seen;
  info.after_last = run;
  if (!seen) info.before_first = info.total;
  return info;
}

GapAnalysis analyze_gaps(const ir::Function& f, const MarkerPred& pred) {
  const std::size_t n = f.num_blocks();
  std::vector<BlockGapInfo> info(n);
  for (std::size_t b = 0; b < n; ++b) {
    info[b] = block_gap_info(f.block(static_cast<ir::BlockId>(b)), pred);
  }
  const auto preds = f.predecessors();
  const auto order = f.rpo();

  // in_gap[b]: max cycles-since-last-marker at block entry.
  std::vector<Cycles> in_gap(n, 0);
  std::vector<Cycles> out_gap(n, 0);
  std::vector<char> visited(n, 0);
  visited[f.entry()] = 1;  // entry counts as a marker event: gap 0

  Cycles global_max = 0;
  // Fixpoint with divergence detection: gaps can only grow; if they are
  // still growing after n+2 sweeps a marker-free cycle exists.
  const std::size_t max_sweeps = n + 2;
  bool changed = true;
  std::size_t sweep = 0;
  bool diverged = false;
  while (changed && !diverged) {
    changed = false;
    if (++sweep > max_sweeps) {
      diverged = true;
      break;
    }
    for (ir::BlockId b : order) {
      Cycles in = 0;
      bool any = b == f.entry();
      for (ir::BlockId p : preds[b]) {
        if (!visited[p]) continue;
        in = std::max(in, out_gap[p]);
        any = true;
      }
      if (!any) continue;
      const Cycles out = info[b].has_marker
                             ? info[b].after_last
                             : in + info[b].total;
      if (!visited[b] || in != in_gap[b] || out != out_gap[b]) {
        visited[b] = 1;
        in_gap[b] = in;
        out_gap[b] = out;
        changed = true;
      }
    }
  }
  GapAnalysis out;
  out.in_gap = std::move(in_gap);
  out.reachable = std::move(visited);
  if (diverged) {
    out.max_gap = kNever;
    return out;
  }
  for (std::size_t b = 0; b < n; ++b) {
    if (!out.reachable[b]) continue;
    const auto& bi = info[b];
    global_max = std::max(global_max, bi.max_internal);
    if (bi.has_marker) {
      global_max = std::max(global_max, out.in_gap[b] + bi.before_first);
      global_max = std::max(global_max, bi.after_last);
    } else {
      global_max = std::max(global_max, out.in_gap[b] + bi.total);
    }
  }
  out.max_gap = global_max;
  return out;
}

Cycles static_max_gap(const ir::Function& f, const MarkerPred& pred) {
  return analyze_gaps(f, pred).max_gap;
}

Cycles loop_iteration_bound(const ir::Function& f,
                            const std::vector<ir::BlockId>& loop_blocks) {
  Cycles total = 0;
  for (ir::BlockId b : loop_blocks) total += f.block(b).cost();
  return total;
}

}  // namespace iw::passes
