// Pointer-provenance analysis: trace each register's value back to the
// allocation root it derives from (a function argument or a kAlloc
// result). CARAT performs exactly this tracing at LLVM IR level so it
// can hoist per-access checks to whole-allocation checks — "memory can
// be managed at arbitrary granularity" because the runtime knows which
// allocation every address belongs to.
//
// Flow-insensitive, conservative: a register whose definitions disagree
// (or that is produced by a non-address-preserving op) gets kUnknown.
#pragma once

#include <vector>

#include "ir/function.hpp"

namespace iw::passes {

struct Provenance {
  enum class Kind : std::uint8_t { kNoDef, kBase, kUnknown };
  Kind kind{Kind::kNoDef};
  ir::Reg root{ir::kNoReg};  // valid when kind == kBase

  [[nodiscard]] bool is_base() const { return kind == Kind::kBase; }
};

class ProvenanceAnalysis {
 public:
  explicit ProvenanceAnalysis(const ir::Function& f);

  [[nodiscard]] const Provenance& of(ir::Reg r) const { return prov_[r]; }

  /// The allocation root of the address held in `r`, or kNoReg if it
  /// cannot be traced to a unique root.
  [[nodiscard]] ir::Reg root_of(ir::Reg r) const {
    return prov_[r].is_base() ? prov_[r].root : ir::kNoReg;
  }

 private:
  std::vector<Provenance> prov_;
};

}  // namespace iw::passes
