#include "passes/provenance.hpp"

namespace iw::passes {

namespace {

using Kind = Provenance::Kind;

/// Merge a new definition's provenance into the accumulated one.
Provenance merge(const Provenance& cur, const Provenance& def) {
  if (cur.kind == Kind::kNoDef) return def;
  if (def.kind == Kind::kNoDef) return cur;
  if (cur.kind == Kind::kBase && def.kind == Kind::kBase &&
      cur.root == def.root) {
    return cur;
  }
  return {Kind::kUnknown, ir::kNoReg};
}

/// Provenance of an additive combination: pointer + index stays with the
/// pointer; pointer + pointer (or anything else) is unknown.
Provenance combine_additive(const Provenance& a, const Provenance& b) {
  const bool a_base = a.kind == Kind::kBase;
  const bool b_base = b.kind == Kind::kBase;
  if (a_base && !b_base) return a;
  if (b_base && !a_base) return b;
  return {Kind::kUnknown, ir::kNoReg};
}

}  // namespace

ProvenanceAnalysis::ProvenanceAnalysis(const ir::Function& f) {
  prov_.assign(static_cast<std::size_t>(f.num_regs()), Provenance{});
  // Arguments are allocation roots (the caller vouches for them).
  for (unsigned i = 0; i < f.num_args(); ++i) {
    prov_[f.arg_reg(i)] = {Kind::kBase, f.arg_reg(i)};
  }

  auto lookup = [&](ir::Reg r) -> Provenance {
    if (r == ir::kNoReg) return {Kind::kUnknown, ir::kNoReg};
    return prov_[r];
  };

  bool changed = true;
  // Fixpoint: each pass can only move lattice values downward
  // (NoDef -> Base -> Unknown), so it terminates quickly.
  while (changed) {
    changed = false;
    for (std::size_t bi = 0; bi < f.num_blocks(); ++bi) {
      const auto& bb = f.block(static_cast<ir::BlockId>(bi));
      for (const auto& i : bb.body) {
        if (i.r == ir::kNoReg) continue;
        Provenance def;
        switch (i.op) {
          case ir::Op::kAlloc:
            def = {Kind::kBase, i.r};
            break;
          case ir::Op::kMov:
            def = lookup(i.a);
            break;
          case ir::Op::kAdd:
          case ir::Op::kSub:
            def = combine_additive(lookup(i.a), lookup(i.b));
            break;
          default:
            def = {Kind::kUnknown, ir::kNoReg};
            break;
        }
        const Provenance next = merge(prov_[i.r], def);
        if (next.kind != prov_[i.r].kind || next.root != prov_[i.r].root) {
          prov_[i.r] = next;
          changed = true;
        }
      }
    }
  }
}

}  // namespace iw::passes
