#include "passes/guard_injection.hpp"

namespace iw::passes {

GuardStats inject_guards(ir::Function& f) {
  GuardStats stats;
  for (std::size_t bi = 0; bi < f.num_blocks(); ++bi) {
    auto& bb = f.block(static_cast<ir::BlockId>(bi));
    for (std::size_t k = 0; k < bb.body.size(); ++k) {
      const ir::Instr access = bb.body[k];  // copy: insert invalidates refs
      if (!ir::is_memory_access(access.op)) continue;
      // Idempotence: skip if the previous instruction already guards
      // this exact access.
      if (k > 0) {
        const auto& prev = bb.body[k - 1];
        if (prev.op == ir::Op::kGuard && prev.a == access.a &&
            prev.imm == access.imm) {
          continue;
        }
      }
      ir::Instr g = ir::Instr::make(ir::Op::kGuard);
      g.a = access.a;       // base register of the access
      g.imm = access.imm;   // byte offset
      g.imm2 = 8;           // access width
      g.b = access.op == ir::Op::kStore ? 1 : 0;  // write flag
      bb.body.insert(bb.body.begin() + static_cast<std::ptrdiff_t>(k), g);
      ++k;  // skip past the access we just guarded
      ++stats.guards_inserted;
      if (access.op == ir::Op::kStore) {
        ++stats.stores_guarded;
      } else {
        ++stats.loads_guarded;
      }
    }
  }
  return stats;
}

unsigned count_guards(const ir::Function& f) {
  return static_cast<unsigned>(f.count_instrs([](const ir::Instr& i) {
    return i.op == ir::Op::kGuard || i.op == ir::Op::kGuardRange;
  }));
}

}  // namespace iw::passes
