// Compiler-based timing: place timing checks so that along every path
// at most `budget` cycles elapse between framework entries (paper
// §IV-C). The same placement engine also drives poll injection for
// blended device drivers (§V-C).
//
// Check semantics (matching the real system): each injected check
// compares the *elapsed global cycle count* since the framework last
// ran against a fire threshold; a non-firing visit costs one compare.
// The guarantee is therefore compositional:
//     dynamic gap <= (max static check spacing) + (fire threshold).
// Placement drives the static spacing to budget/2 and uses a budget/2
// threshold, so the dynamic gap is bounded by the budget on every
// path — including across loop re-entries, where naive per-site visit
// counters leak (a bug our randomized property tests caught).
//
// Algorithm:
//  1. an unconditional call at function entry;
//  2. straight-line coverage: a thresholded check wherever accumulated
//     block cost exceeds budget/2;
//  3. a thresholded check in every loop header not otherwise covered;
//  4. fixpoint refinement over the CFG gap analysis until the static
//     spacing is <= budget/2 on every path.
#pragma once

#include "ir/function.hpp"

namespace iw::passes {

struct PlacementStats {
  unsigned calls_inserted{0};
  /// Checks with a non-zero fire threshold (amortized visits).
  unsigned amortized_calls{0};
  Cycles max_threshold{0};
};

struct PlacementOptions {
  Cycles budget{1000};
  ir::Op call_op{ir::Op::kTimingCall};
  /// Skip the entry call (for polls, which need only periodic coverage).
  bool entry_call{true};
};

PlacementStats place_periodic_calls(ir::Function& f,
                                    const PlacementOptions& opts);

/// Convenience wrappers matching the paper's two uses.
inline PlacementStats inject_timing(ir::Function& f, Cycles budget) {
  return place_periodic_calls(f, {budget, ir::Op::kTimingCall, true});
}
inline PlacementStats inject_polling(ir::Function& f, Cycles budget) {
  return place_periodic_calls(f, {budget, ir::Op::kPoll, false});
}

}  // namespace iw::passes
