#include "passes/pass_manager.hpp"

#include "common/assert.hpp"
#include "ir/verify.hpp"

namespace iw::passes {

void PassManager::add(std::string name, FnPass pass) {
  passes_.emplace_back(std::move(name), std::move(pass));
}

void PassManager::run(ir::Function& f, const ir::Module* m) {
  for (auto& [name, pass] : passes_) {
    pass(f);
    const std::string err = ir::verify(f, m);
    IW_ASSERT_MSG(err.empty(), ("pass '" + name + "' broke " + f.name() +
                                ":\n" + err)
                                   .c_str());
    log_.push_back(name + ":" + f.name());
  }
}

void PassManager::run_module(ir::Module& m) {
  for (std::size_t i = 0; i < m.num_functions(); ++i) {
    run(m.function(static_cast<ir::FuncId>(i)), &m);
  }
}

}  // namespace iw::passes
