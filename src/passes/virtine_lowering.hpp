// Virtine lowering (paper §IV-D, Fig. 5):
//
//     virtine int fib(int n) { ... }
//
// "Programmers write code as shown in Figure 5, and the compiler and
// runtime cooperate to run that function in its own, isolated virtual
// machine." This pass is the compiler half: every call to a
// virtine-marked function from *non-virtine* code is rewritten into a
// kVirtineCall, which the runtime binding (virtine::VirtineBinding)
// dispatches through Wasp. Calls *inside* a virtine (e.g. fib's own
// recursion) stay plain calls — they execute within the same VM.
#pragma once

#include <set>

#include "ir/function.hpp"

namespace iw::passes {

struct VirtineLoweringStats {
  unsigned calls_lowered{0};
};

/// Rewrite calls to the functions in `virtines` from every function NOT
/// in `virtines`.
VirtineLoweringStats lower_virtine_calls(ir::Module& m,
                                         const std::set<ir::FuncId>& virtines);

}  // namespace iw::passes
