// CARAT guard hoisting and aggregation (paper §IV-A, optimized phase).
//
// "Modern code analysis techniques can provide the information necessary
// to aggregate and hoist protection and tracking code, thus taking it
// out of the critical path in most instances."
//
// Two transformations:
//  * In-block aggregation: consecutive guards on the same base register
//    collapse into one covering guard.
//  * Loop hoisting: a guard whose base register is loop-invariant is
//    replaced by a single whole-allocation kGuardRange in the loop
//    preheader (CARAT knows allocation bounds, so a base-only range
//    check covers every in-bounds offset from that base).
#pragma once

#include "ir/function.hpp"

namespace iw::passes {

struct HoistStats {
  unsigned hoisted{0};      // per-access guards removed by loop hoisting
  unsigned aggregated{0};   // guards merged within blocks
  unsigned range_guards{0}; // kGuardRange instrs inserted in preheaders
};

HoistStats hoist_guards(ir::Function& f);

}  // namespace iw::passes
