// Static path-length / marker-gap analysis.
//
// "A major challenge here is that the compiler transform needs to
// introduce timing calls statically, so that they occur dynamically at
// some desired rate regardless of the code path taken" (paper §IV-C).
// This analysis computes a conservative bound on the cycles executed
// between consecutive *markers* (timing calls / polls) over all paths.
//
// Strided markers (amortized checks placed in hot loops) are treated as
// firing on every visit here; the placement pass chooses strides so the
// amortized gap stays within budget, and the interpreter-based dynamic
// tests validate the real (strided) guarantee.
#pragma once

#include <functional>

#include "ir/function.hpp"

namespace iw::passes {

using MarkerPred = std::function<bool(const ir::Instr&)>;

/// Marker predicate for timing calls / polls.
MarkerPred is_op(ir::Op op);

struct BlockGapInfo {
  Cycles before_first{0};  // cycles from block entry to first marker
  Cycles after_last{0};    // cycles from last marker to block exit
  Cycles max_internal{0};  // max gap between consecutive in-block markers
  bool has_marker{false};
  Cycles total{0};  // whole-block cost
};

BlockGapInfo block_gap_info(const ir::BasicBlock& bb, const MarkerPred& pred);

/// Full gap dataflow result: per-block inflowing gap (cycles since the
/// last marker at block entry) plus the global max. `max_gap` is kNever
/// if some CFG cycle contains no marker (unbounded gap).
struct GapAnalysis {
  std::vector<Cycles> in_gap;
  std::vector<char> reachable;
  Cycles max_gap{0};
};

GapAnalysis analyze_gaps(const ir::Function& f, const MarkerPred& pred);

/// Max cycles between consecutive marker events over any path, where
/// function entry counts as a marker event and the gap to `ret` counts.
/// Returns kNever if some CFG cycle contains no marker (unbounded gap).
Cycles static_max_gap(const ir::Function& f, const MarkerPred& pred);

/// Conservative per-iteration cost of a loop: the sum of all its blocks'
/// costs (an upper bound on any single iteration's path).
Cycles loop_iteration_bound(const ir::Function& f,
                            const std::vector<ir::BlockId>& loop_blocks);

}  // namespace iw::passes
