#include "pipeline/interrupt_delivery.hpp"

#include "obs/metrics.hpp"

namespace iw::pipeline {

namespace {

/// Shared core loop. `sub` may be null (standalone analytic run); when
/// bound, `origin` anchors the run on `core`'s clock so spans land where
/// the core actually was when the replay started.
PipelineResult run_impl(const PipelineConfig& cfg,
                        const InterruptExperiment& exp, Rng rng,
                        substrate::StackSubstrate* sub, CoreId core) {
  PipelineResult res;
  GsharePredictor predictor;
  const Cycles origin = sub != nullptr ? sub->core_now(core) : 0;

  std::uint64_t cycle = 0;
  std::uint64_t retired = 0;
  std::uint64_t pc = 0x400000;

  // Next interrupt arrival (exponential gaps).
  auto next_gap = [&] {
    return static_cast<std::uint64_t>(
        rng.exponential(static_cast<double>(exp.interrupt_period)) + 1.0);
  };
  std::uint64_t next_irq = next_gap();
  std::uint64_t pending_since = 0;
  bool irq_pending = false;

  while (retired < exp.total_instructions) {
    // Interrupt arrival check.
    if (!irq_pending && cycle >= next_irq) {
      irq_pending = true;
      pending_since = cycle;
    }

    if (irq_pending) {
      ++res.interrupts_delivered;
      std::uint64_t handler_entry;
      if (exp.mechanism == DeliveryMechanism::kClassicIdt) {
        // Drain the pipe, microcode dispatch, run handler, iret refill.
        cycle += cfg.stages;           // drain
        cycle += cfg.idt_microcode;    // dispatch microcode
        handler_entry = cycle;
        cycle += cfg.handler_instrs;   // handler body (IPC 1)
        cycle += cfg.iret_cost;        // return
        cycle += cfg.stages;           // refill
      } else {
        // Injected as a predicted branch at fetch: the redirect costs a
        // fetch bubble of one stage; the front of the pipe keeps
        // retiring the instructions already in flight.
        cycle += 2;                    // fetch redirect + queue slot
        handler_entry = cycle;
        cycle += cfg.handler_instrs;
        cycle += cfg.msr_return_cost;  // MSR-mediated return
        cycle += 1;                    // redirect back
      }
      const std::uint64_t dispatch = handler_entry - pending_since;
      res.dispatch_latency.add(dispatch);
      if (sub != nullptr) {
        sub->trace_span(core, "pipeline.interrupt", origin + pending_since,
                        origin + cycle,
                        static_cast<int>(exp.mechanism));
        sub->metric_record(obs::names::kPipelineDispatchLatency, dispatch);
      }
      irq_pending = false;
      next_irq = cycle + next_gap();
      continue;
    }

    // Retire one instruction of the synthetic stream.
    pc += 4;
    ++retired;
    ++cycle;
    if (rng.chance(cfg.branch_fraction)) {
      const bool taken = rng.chance(cfg.branch_taken_bias);
      const bool correct = predictor.resolve(pc, taken);
      if (!correct) {
        cycle += cfg.stages - 1;  // flush bubble
      }
      if (taken) pc += rng.uniform(16, 512) & ~std::uint64_t{3};
    }
  }

  res.cycles = cycle;
  res.instructions = retired;
  res.predictor_accuracy = predictor.accuracy();
  if (sub != nullptr) {
    sub->charge(core, cycle);
    sub->metric_add(obs::names::kPipelineInstructions, retired);
    sub->metric_add(obs::names::kPipelineInterrupts,
                    res.interrupts_delivered);
  }
  return res;
}

}  // namespace

PipelineResult run_pipeline(const PipelineConfig& cfg,
                            const InterruptExperiment& exp) {
  return run_impl(cfg, exp, Rng(cfg.seed), nullptr, 0);
}

PipelineResult run_pipeline(const PipelineConfig& cfg,
                            const InterruptExperiment& exp,
                            substrate::StackSubstrate* sub, CoreId core) {
  if (sub == nullptr) return run_pipeline(cfg, exp);
  return run_impl(cfg, exp, sub->rng_stream("pipeline"), sub, core);
}

}  // namespace iw::pipeline
