// Gshare branch predictor: global history XOR PC indexing a table of
// 2-bit saturating counters. Pipeline-interrupt delivery (paper §V-D)
// rides exactly this machinery — an injected interrupt is "a kind of
// branch instruction injected into the instruction fetch logic".
#pragma once

#include <cstdint>
#include <vector>

namespace iw::pipeline {

class GsharePredictor {
 public:
  explicit GsharePredictor(unsigned table_bits = 12);

  [[nodiscard]] bool predict(std::uint64_t pc) const;
  void update(std::uint64_t pc, bool taken);

  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }
  [[nodiscard]] std::uint64_t mispredicts() const { return mispredicts_; }
  [[nodiscard]] double accuracy() const {
    return lookups_ ? 1.0 - static_cast<double>(mispredicts_) /
                                static_cast<double>(lookups_)
                    : 1.0;
  }

  /// Record the outcome of a predicted branch (bookkeeping helper).
  bool resolve(std::uint64_t pc, bool taken);

 private:
  [[nodiscard]] std::size_t index(std::uint64_t pc) const;

  unsigned table_bits_;
  std::vector<std::uint8_t> counters_;  // 2-bit saturating
  std::uint64_t history_{0};
  mutable std::uint64_t lookups_{0};
  std::uint64_t mispredicts_{0};
};

}  // namespace iw::pipeline
