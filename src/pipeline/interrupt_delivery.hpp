// Pipeline interrupts (paper §V-D).
//
// "We have measured [interrupt dispatch] to be on the order of 1000
// cycles... We have developed a realizable extension of branch
// prediction logic that would allow a simple interrupt (no privilege
// level change) in an interwoven system to be delivered as if it were a
// kind of branch instruction injected into the instruction fetch logic.
// ... The latency would be similar to that of a correctly predicted
// branch instruction, 100-1000x better."
//
// The model: an in-order pipeline retiring a synthetic branchy
// instruction stream (gshare-predicted) while interrupts arrive at a
// configurable rate. Two delivery mechanisms:
//   kClassicIdt   — drain + microcoded dispatch (state save, IDT read,
//                   privilege checks) + iret on return;
//   kBranchInject — the interrupt is injected at fetch as a predicted
//                   branch to the handler; return via an MSR-based
//                   sysret-like path.
#pragma once

#include <cstdint>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "pipeline/branch_predictor.hpp"
#include "substrate/substrate.hpp"

namespace iw::pipeline {

enum class DeliveryMechanism { kClassicIdt, kBranchInject };

struct PipelineConfig {
  unsigned stages{8};             // fetch-to-retire depth
  double branch_fraction{0.18};   // of the synthetic stream
  double branch_taken_bias{0.6};
  Cycles idt_microcode{960};      // state save + descriptor walk + checks
  Cycles iret_cost{630};
  Cycles msr_return_cost{38};     // sysret-like return path
  std::uint64_t handler_instrs{24};
  std::uint64_t seed{42};
};

struct InterruptExperiment {
  DeliveryMechanism mechanism{DeliveryMechanism::kClassicIdt};
  std::uint64_t total_instructions{2'000'000};
  Cycles interrupt_period{50'000};  // mean arrival gap (exponential)
};

struct PipelineResult {
  std::uint64_t cycles{0};
  std::uint64_t instructions{0};
  std::uint64_t interrupts_delivered{0};
  LatencyHistogram dispatch_latency;  // arrival -> first handler instr
  double predictor_accuracy{0.0};
  [[nodiscard]] double ipc() const {
    return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
};

PipelineResult run_pipeline(const PipelineConfig& cfg,
                            const InterruptExperiment& exp);

/// Substrate replay: the same experiment, but the instruction stream's
/// randomness comes from the substrate's "pipeline" RNG stream (cfg.seed
/// is ignored), every delivered interrupt appears as a span on `core`'s
/// timeline (arrival -> handler return, vector = mechanism), the total
/// run is charged to `core`'s clock, and pipeline.* metrics stream to
/// the registry. Passing sub == nullptr degrades to the standalone run.
PipelineResult run_pipeline(const PipelineConfig& cfg,
                            const InterruptExperiment& exp,
                            substrate::StackSubstrate* sub, CoreId core);

}  // namespace iw::pipeline
