#include "pipeline/branch_predictor.hpp"

namespace iw::pipeline {

GsharePredictor::GsharePredictor(unsigned table_bits)
    : table_bits_(table_bits),
      counters_(std::size_t{1} << table_bits, 1) {}  // weakly not-taken

std::size_t GsharePredictor::index(std::uint64_t pc) const {
  const std::uint64_t mask = (std::uint64_t{1} << table_bits_) - 1;
  return static_cast<std::size_t>(((pc >> 2) ^ history_) & mask);
}

bool GsharePredictor::predict(std::uint64_t pc) const {
  ++lookups_;
  return counters_[index(pc)] >= 2;
}

void GsharePredictor::update(std::uint64_t pc, bool taken) {
  auto& c = counters_[index(pc)];
  if (taken) {
    if (c < 3) ++c;
  } else {
    if (c > 0) --c;
  }
  history_ = ((history_ << 1) | (taken ? 1 : 0)) &
             ((std::uint64_t{1} << table_bits_) - 1);
}

bool GsharePredictor::resolve(std::uint64_t pc, bool taken) {
  ++lookups_;
  const bool predicted = counters_[index(pc)] >= 2;
  const bool correct = predicted == taken;
  if (!correct) ++mispredicts_;
  update(pc, taken);
  return correct;
}

}  // namespace iw::pipeline
