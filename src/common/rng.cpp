#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace iw {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  IW_ASSERT(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) {
    // hi - lo spans the whole u64 range, which (with lo <= hi) forces
    // lo == 0 and hi == UINT64_MAX: every raw draw is already in
    // [lo, hi]. Keep the offset explicit so the full-range path cannot
    // silently drift if the precondition ever changes.
    IW_ASSERT(lo == 0);
    return lo + next_u64();
  }
  // Debiased modulo (Lemire-style rejection is overkill for sim noise).
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v > limit);
  return lo + v % span;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double mean) {
  IW_ASSERT(mean > 0.0);
  double u;
  do {
    u = next_double();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

double Rng::lognormal_median(double median, double sigma) {
  IW_ASSERT(median > 0.0);
  return median * std::exp(normal(0.0, sigma));
}

double Rng::heavy_tail(double median, double alpha, double cap) {
  IW_ASSERT(median > 0.0 && alpha > 0.0 && cap >= median);
  // Pareto with x_m chosen so the median equals `median`:
  //   median = x_m * 2^(1/alpha)  =>  x_m = median / 2^(1/alpha)
  const double xm = median / std::pow(2.0, 1.0 / alpha);
  double u;
  do {
    u = next_double();
  } while (u <= 1e-300);
  const double v = xm / std::pow(u, 1.0 / alpha);
  return v > cap ? cap : v;
}

bool Rng::chance(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace iw
