// Log-bucketed histogram for latency distributions (cycles or ns).
// Buckets are powers of two with `sub` linear subdivisions per octave,
// HdrHistogram-style but minimal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace iw {

class LatencyHistogram {
 public:
  /// `sub_buckets` linear subdivisions per power-of-two octave.
  explicit LatencyHistogram(unsigned sub_buckets = 8);

  void add(std::uint64_t value, std::uint64_t count = 1);
  void merge(const LatencyHistogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return total_count_; }
  [[nodiscard]] std::uint64_t min() const;
  [[nodiscard]] std::uint64_t max() const;
  [[nodiscard]] double mean() const;

  /// Value at percentile p (0..100]; returns bucket upper bound.
  [[nodiscard]] std::uint64_t value_at_percentile(double p) const;

  /// Multi-line ASCII rendering (for example programs).
  [[nodiscard]] std::string render(unsigned width = 50) const;

  // Bucketing scheme (public: exporters and property tests rely on the
  // index/bound round-trip being monotone).
  [[nodiscard]] std::size_t bucket_index(std::uint64_t v) const;
  [[nodiscard]] std::uint64_t bucket_upper_bound(std::size_t idx) const;

  /// Full dynamic state, for checkpoint/restore. The bucketing scheme
  /// (sub_) is structural and not part of it.
  struct State {
    std::vector<std::uint64_t> counts;
    std::uint64_t total_count{0};
    std::uint64_t min{~std::uint64_t{0}};
    std::uint64_t max{0};
    double sum{0.0};
  };
  [[nodiscard]] State state() const {
    return {counts_, total_count_, min_, max_, sum_};
  }
  void set_state(const State& s) {
    counts_ = s.counts;
    total_count_ = s.total_count;
    min_ = s.min;
    max_ = s.max;
    sum_ = s.sum;
  }

 private:
  unsigned sub_;
  unsigned sub_shift_;  // log2(sub_)
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_count_{0};
  std::uint64_t min_{~std::uint64_t{0}};
  std::uint64_t max_{0};
  double sum_{0.0};
};

}  // namespace iw
