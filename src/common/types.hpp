// Fundamental quantity types shared by every interweave subsystem.
//
// All simulated time in the project is kept in *cycles* of a per-machine
// reference clock. Conversions to wall-clock units go through a frequency
// so each figure can state its machine preset (KNL-like vs Xeon-like).
#pragma once

#include <cstdint>

namespace iw {

/// Virtual time, in cycles of the machine's reference clock.
using Cycles = std::uint64_t;

/// Signed cycle delta, for differences that may be negative.
using CycleDelta = std::int64_t;

/// A simulated physical/virtual address (single address space).
using Addr = std::uint64_t;

/// Core / CPU identifier inside a simulated machine.
using CoreId = std::uint32_t;

/// Frequency descriptor used to convert cycles <-> nanoseconds.
struct ClockFreq {
  double ghz{1.0};

  [[nodiscard]] constexpr double cycles_to_ns(Cycles c) const {
    return static_cast<double>(c) / ghz;
  }
  [[nodiscard]] constexpr double cycles_to_us(Cycles c) const {
    return cycles_to_ns(c) / 1000.0;
  }
  [[nodiscard]] constexpr Cycles ns_to_cycles(double ns) const {
    return static_cast<Cycles>(ns * ghz + 0.5);
  }
  [[nodiscard]] constexpr Cycles us_to_cycles(double us) const {
    return ns_to_cycles(us * 1000.0);
  }
};

/// Sentinel for "no time" / "never".
inline constexpr Cycles kNever = ~Cycles{0};

/// Add cycle quantities without wrapping past kNever ("never plus
/// anything is still never"). Horizon arithmetic everywhere — epoch
/// lookahead bounds, watchdog clamps, fast-forward targets — goes
/// through this so a kNever operand stays a sentinel.
[[nodiscard]] inline constexpr Cycles saturating_add(Cycles a, Cycles b) {
  return a > kNever - b ? kNever : a + b;
}

}  // namespace iw
