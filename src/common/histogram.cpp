#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/assert.hpp"

namespace iw {

LatencyHistogram::LatencyHistogram(unsigned sub_buckets) : sub_(sub_buckets) {
  IW_ASSERT_MSG(sub_buckets >= 1 && std::has_single_bit(sub_buckets),
                "sub_buckets must be a power of two");
  sub_shift_ = static_cast<unsigned>(std::countr_zero(sub_buckets));
  // 64 octaves x sub buckets covers the full uint64 range.
  counts_.assign(static_cast<std::size_t>(64) * sub_, 0);
}

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) const {
  if (v < sub_) return static_cast<std::size_t>(v);  // exact small values
  const unsigned octave = 63 - static_cast<unsigned>(std::countl_zero(v));
  // Position within the octave, scaled to sub_ subdivisions.
  const unsigned pos =
      static_cast<unsigned>((v - (std::uint64_t{1} << octave)) >>
                            (octave > sub_shift_ ? octave - sub_shift_ : 0)) &
      (sub_ - 1);
  std::size_t idx = static_cast<std::size_t>(octave) * sub_ + pos;
  return std::min(idx, counts_.size() - 1);
}

std::uint64_t LatencyHistogram::bucket_upper_bound(std::size_t idx) const {
  const std::size_t octave = idx / sub_;
  const std::size_t pos = idx % sub_;
  // Indices below sub_ are exact values — except with sub_ == 1, where
  // the small-value path only covers 0 and bucket_index sends value 1
  // into bucket 0 too (its log2 octave is 0). The bound must cover it.
  if (octave == 0) return sub_ == 1 ? 1 : pos;
  const std::uint64_t base = std::uint64_t{1} << octave;
  const std::uint64_t step =
      octave > sub_shift_ ? (std::uint64_t{1} << (octave - sub_shift_)) : 1;
  return base + step * (pos + 1) - 1;
}

void LatencyHistogram::add(std::uint64_t value, std::uint64_t count) {
  counts_[bucket_index(value)] += count;
  total_count_ += count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  IW_ASSERT(sub_ == other.sub_);
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_count_ += other.total_count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

void LatencyHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  min_ = ~std::uint64_t{0};
  max_ = 0;
  sum_ = 0.0;
}

std::uint64_t LatencyHistogram::min() const { return total_count_ ? min_ : 0; }
std::uint64_t LatencyHistogram::max() const { return max_; }

double LatencyHistogram::mean() const {
  return total_count_ ? sum_ / static_cast<double>(total_count_) : 0.0;
}

std::uint64_t LatencyHistogram::value_at_percentile(double p) const {
  if (total_count_ == 0) return 0;
  IW_ASSERT(p > 0.0 && p <= 100.0);
  const auto target = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(total_count_) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target && counts_[i] > 0) return bucket_upper_bound(i);
  }
  return max_;
}

std::string LatencyHistogram::render(unsigned width) const {
  std::string out;
  if (total_count_ == 0) return "  (empty)\n";
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  char line[192];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<unsigned>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * width);
    std::snprintf(line, sizeof(line), "  <= %12llu : %-10llu ",
                  static_cast<unsigned long long>(bucket_upper_bound(i)),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace iw
