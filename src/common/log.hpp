// Minimal leveled logging. Defaults to warnings-only so simulations stay
// quiet in tests and benches; examples raise the level for narration.
#pragma once

#include <cstdarg>

namespace iw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace iw

#define IW_LOG_DEBUG(...) ::iw::logf(::iw::LogLevel::kDebug, __VA_ARGS__)
#define IW_LOG_INFO(...) ::iw::logf(::iw::LogLevel::kInfo, __VA_ARGS__)
#define IW_LOG_WARN(...) ::iw::logf(::iw::LogLevel::kWarn, __VA_ARGS__)
#define IW_LOG_ERROR(...) ::iw::logf(::iw::LogLevel::kError, __VA_ARGS__)
