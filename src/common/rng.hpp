// Deterministic, seedable random number generation.
//
// Every stochastic element of the simulation (scheduler jitter, signal
// latency tails, workload irregularity) draws from an explicitly seeded
// Rng so that every figure in EXPERIMENTS.md is bit-reproducible.
// The generator is xoshiro256**, seeded via splitmix64.
#pragma once

#include <cstdint>

namespace iw {

/// splitmix64 step; used for seeding and as a cheap hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Not thread-safe; use one per simulated entity.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with given mean (> 0).
  double exponential(double mean);

  /// Log-normal such that the *median* of the result is `median` and the
  /// spread parameter is `sigma` (sigma of the underlying normal).
  double lognormal_median(double median, double sigma);

  /// Bounded Pareto-style heavy tail: median `median`, shape `alpha` > 0,
  /// capped at `cap`. Used for OS noise (signal latency tails).
  double heavy_tail(double median, double alpha, double cap);

  /// Bernoulli trial.
  bool chance(double p);

  /// Derive an independent child stream (for per-core RNGs).
  Rng split();

  /// Complete generator state, exposed so checkpoint/restore
  /// (hwsim::Snapshot) can capture a stream mid-sequence. The cached
  /// Box-Muller second value is part of the state: dropping it would
  /// desynchronize the next normal() draw after a restore.
  struct State {
    std::uint64_t s[4]{0, 0, 0, 0};
    double cached_normal{0.0};
    bool has_cached_normal{false};
  };

  [[nodiscard]] State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, cached_normal_,
                 has_cached_normal_};
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    cached_normal_ = st.cached_normal;
    has_cached_normal_ = st.has_cached_normal;
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_{0.0};
  bool has_cached_normal_{false};
};

}  // namespace iw
