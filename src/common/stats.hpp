// Summary statistics used by the benchmark harnesses: means, geometric
// means (the paper reports geomeans), percentiles, and an online
// (Welford) accumulator for long-running simulations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace iw {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);  // requires all xs > 0
double stddev(std::span<const double> xs);   // sample stddev (n-1)
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Coefficient of variation (stddev / mean); 0 for n < 2 or mean == 0.
double cv(std::span<const double> xs);

/// Numerically stable online mean/variance/min/max accumulator.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Full accumulator state for checkpoint/restore (hwsim::Snapshot).
  struct State {
    std::size_t n{0};
    double mean{0.0};
    double m2{0.0};
    double min{0.0};
    double max{0.0};
    double sum{0.0};
  };

  [[nodiscard]] State state() const {
    return State{n_, mean_, m2_, min_, max_, sum_};
  }

  void set_state(const State& st) {
    n_ = st.n;
    mean_ = st.mean;
    m2_ = st.m2;
    min_ = st.min;
    max_ = st.max;
    sum_ = st.sum;
  }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

}  // namespace iw
