#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace iw {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    IW_ASSERT_MSG(x > 0.0, "geomean requires positive inputs");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  IW_ASSERT(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double cv(std::span<const double> xs) {
  const double m = mean(xs);
  if (xs.size() < 2 || m == 0.0) return 0.0;
  return stddev(xs) / m;
}

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace iw
