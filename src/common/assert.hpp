// Internal invariant checking. IW_ASSERT is always on (simulation
// correctness beats the negligible cost), IW_DCHECK compiles out in
// release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace iw::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "interweave: assertion `%s` failed at %s:%d%s%s\n",
               expr, file, line, msg && *msg ? ": " : "", msg ? msg : "");
  std::abort();
}
}  // namespace iw::detail

#define IW_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) ::iw::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define IW_ASSERT_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) ::iw::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define IW_DCHECK(expr) ((void)0)
#else
#define IW_DCHECK(expr) IW_ASSERT(expr)
#endif
