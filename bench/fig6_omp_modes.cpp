// Fig. 6 reproduction: RTK/PIK/CCK performance relative to Linux OpenMP
// as a function of CPUs used, for NAS BT and SP (mini versions), on the
// KNL-like machine. Baseline (Linux OpenMP) is 1.0; `t` reports the
// single-threaded Linux absolute performance like the original figure.
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "harness.hpp"
#include "omp/runtime.hpp"

using namespace iw;

namespace {
bench::Harness harness;

// run_miniapp creates its machine internally, so the sinks ride in on
// the config rather than through Harness::attach.
omp::OmpResult run_app(const workloads::MiniApp& app, omp::OmpConfig cfg,
                       const std::string& label) {
  harness.begin_run(label);
  cfg.tracer = harness.tracer();
  cfg.metrics = harness.metrics();
  return omp::run_miniapp(app, cfg);
}
}  // namespace

int main(int argc, char** argv) {
  if (!harness.parse(argc, argv)) return 2;
  const std::vector<unsigned> cpu_counts{1, 2, 4, 8, 16, 32, 64};
  std::vector<double> rtk_gains;

  for (const char* which : {"BT", "SP"}) {
    const auto app = std::string(which) == "BT" ? workloads::bt_mini(48, 3)
                                                : workloads::sp_mini(48, 3);
    std::printf("== Fig. 6: %s-mini on Phi KNL model ==\n", which);

    // Single-threaded Linux absolute performance (the figure's `t`).
    omp::OmpConfig base;
    base.mode = omp::OmpMode::kLinux;
    base.num_threads = 1;
    const auto t1 = run_app(app, base, std::string(which) + "/linux/p1");
    std::printf("t = %.1f Mcycles (1-thread Linux makespan)\n",
                static_cast<double>(t1.makespan) / 1e6);

    std::printf("%-6s %10s %10s %10s %10s\n", "CPUs", "Linux", "RTK",
                "PIK", "CCK");
    for (unsigned p : cpu_counts) {
      omp::OmpConfig cfg;
      cfg.num_threads = p;
      cfg.mode = omp::OmpMode::kLinux;
      const auto linux = run_app(app, cfg, std::string(which) + "/linux/p" +
                                               std::to_string(p));
      double rel[3];
      int idx = 0;
      for (omp::OmpMode mode :
           {omp::OmpMode::kRTK, omp::OmpMode::kPIK, omp::OmpMode::kCCK}) {
        cfg.mode = mode;
        const auto r = run_app(app, cfg,
                               std::string(which) + "/" +
                                   omp::mode_name(mode) + "/p" +
                                   std::to_string(p));
        rel[idx++] = static_cast<double>(linux.makespan) /
                     static_cast<double>(r.makespan);
      }
      std::printf("%-6u %10.2f %10.2f %10.2f %10.2f\n", p, 1.0, rel[0],
                  rel[1], rel[2]);
      if (p >= 8) rtk_gains.push_back(rel[0]);
    }
    std::printf("\n");
  }
  std::printf(
      "geomean RTK gain over Linux (>=8 CPUs): %.1f%%  (paper: ~22%% across "
      "all scales/benchmarks; PIK similar, CCK 'not easily summarized')\n",
      100.0 * (geomean(std::span<const double>(rtk_gains.data(),
                                               rtk_gains.size())) -
               1.0));

  // "A repetition of the study on an 8 socket, 192 core machine found
  // similar results (~20% for RTK and PIK)."
  std::printf("\n== 8-socket / 192-core repetition (BT-mini) ==\n");
  std::printf("%-6s %10s %10s %10s\n", "CPUs", "Linux", "RTK", "PIK");
  // Class-B-scale grid: phases must dwarf fork-point costs at P=192.
  const auto app8 = workloads::bt_mini(110, 2);
  std::vector<double> gains8;
  for (unsigned p : {48u, 96u, 192u}) {
    omp::OmpConfig cfg;
    cfg.costs = hwsim::CostModel::xeon8s();
    cfg.num_threads = p;
    cfg.mode = omp::OmpMode::kLinux;
    const auto linux =
        run_app(app8, cfg, "BT8s/linux/p" + std::to_string(p));
    double rel[2];
    int idx = 0;
    for (omp::OmpMode mode : {omp::OmpMode::kRTK, omp::OmpMode::kPIK}) {
      cfg.mode = mode;
      const auto r = run_app(app8, cfg,
                             std::string("BT8s/") + omp::mode_name(mode) +
                                 "/p" + std::to_string(p));
      rel[idx++] = static_cast<double>(linux.makespan) /
                   static_cast<double>(r.makespan);
    }
    std::printf("%-6u %10.2f %10.2f %10.2f\n", p, 1.0, rel[0], rel[1]);
    gains8.push_back(rel[0]);
  }
  std::printf("geomean RTK gain on the 8-socket machine: %.1f%%  "
              "(paper: ~20%%)\n",
              100.0 * (geomean(std::span<const double>(gains8.data(),
                                                       gains8.size())) -
                       1.0));
  return harness.finish() ? 0 : 1;
}
