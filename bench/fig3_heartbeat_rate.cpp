// Fig. 3 reproduction: achieved vs target heartbeat rate in Nautilus
// and Linux, at heart ♥ = 20 µs and 100 µs, 16 CPUs.
//
// Paper: "while the best Linux mechanism cannot sustain heartbeat
// signals at a consistent rate for all benchmarks, even at ♥ = 100 µs
// and a scale of 16 CPUs, Nautilus not only hits the target, but it
// also delivers a consistent, stable rate at both 100 µs and 20 µs."
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "heartbeat/tpal.hpp"
#include "harness.hpp"

using namespace iw;

namespace {

bench::Harness harness;

struct RowResult {
  double worst_rate_khz;
  double mean_rate_khz;
  double worst_cv;
};

RowResult run(const char* stack, const char* mech, double target_us,
              unsigned cpus) {
  hwsim::MachineConfig mc;
  mc.num_cores = cpus;
  mc.costs = hwsim::CostModel::knl();
  mc.max_advances = 2'000'000'000ULL;
  harness.apply(mc);
  hwsim::Machine m(mc);
  harness.attach(m, std::string(stack) + "/" + mech + " @" +
                          std::to_string(static_cast<int>(target_us)) +
                          "us");

  std::unique_ptr<linuxmodel::LinuxStack> lx;
  std::unique_ptr<nautilus::Kernel> nk;
  std::unique_ptr<heartbeat::HeartbeatBackend> hb;
  nautilus::Kernel* k;
  if (std::string(stack) == "nautilus") {
    nk = std::make_unique<nautilus::Kernel>(m);
    k = nk.get();
    auto nhb = std::make_unique<heartbeat::NautilusHeartbeat>(m);
    if (harness.faults_enabled()) {
      heartbeat::FaultToleranceConfig ft;
      ft.enabled = true;
      nhb->set_fault_tolerance(ft);
    }
    hb = std::move(nhb);
  } else {
    lx = std::make_unique<linuxmodel::LinuxStack>(m);
    k = &lx->kernel();
    hb = std::make_unique<heartbeat::LinuxHeartbeat>(
        *lx, std::string(mech) == "relay"
                 ? heartbeat::LinuxHeartbeatMode::kRelay
                 : heartbeat::LinuxHeartbeatMode::kPerThreadTimer);
  }
  k->attach();

  heartbeat::TpalConfig cfg;
  cfg.num_workers = cpus;
  cfg.total_iters = 3'000'000;
  cfg.cycles_per_iter = 30;
  cfg.heartbeat_period = mc.costs.freq.us_to_cycles(target_us);
  heartbeat::TpalRuntime(*k, cfg, hb.get()).run();

  RowResult r{1e18, 0.0, 0.0};
  double sum = 0;
  for (unsigned c = 0; c < cpus; ++c) {
    const double hz = hb->delivered_rate_hz(c, mc.costs.freq);
    r.worst_rate_khz = std::min(r.worst_rate_khz, hz / 1e3);
    sum += hz / 1e3;
    r.worst_cv = std::max(r.worst_cv, hb->jitter_cv(c));
  }
  r.mean_rate_khz = sum / cpus;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  if (!harness.parse(argc, argv)) return 2;
  std::printf(
      "== Fig. 3: achieved vs target heartbeat rate (16 CPUs, KNL) ==\n");
  std::printf("%-10s %-12s %9s %14s %14s %10s %8s\n", "stack", "mechanism",
              "target_us", "target_kHz", "achieved_kHz", "worst_kHz",
              "jitter");
  for (double target_us : {100.0, 20.0}) {
    const double target_khz = 1e3 / target_us;
    struct Cfg {
      const char* stack;
      const char* mech;
    };
    for (const auto& c : {Cfg{"nautilus", "lapic+ipi"},
                          Cfg{"linux", "relay"},
                          Cfg{"linux", "per-thread"}}) {
      const auto r = run(c.stack, c.mech, target_us, 16);
      std::printf("%-10s %-12s %9.0f %14.2f %14.2f %10.2f %7.1f%%\n",
                  c.stack, c.mech, target_us, target_khz, r.mean_rate_khz,
                  r.worst_rate_khz, 100.0 * r.worst_cv);
    }
  }
  std::printf(
      "\nshape check: nautilus hits both targets with ~0%% jitter;\n"
      "linux falls short at 20 us (relay saturates the master) and\n"
      "delivers with visible jitter even at 100 us.\n");
  return harness.finish() ? 0 : 1;
}
