// The shared bench harness: one flag surface for every fig*/tab_*
// binary. Replaces the old header-only obs_flags.hpp.
//
//   --trace=FILE         Chrome trace of every attached run
//   --metrics-json=FILE  metrics registry dump at exit
//   --faults=SPEC        deterministic fault plan (fault_plan.hpp grammar)
//   --fault-seed=N       explicit fault-stream seed (0 = derive)
//   --seed=N             experiment seed (machines + analytic substrates)
//   --scheduler=NAME     DES scheduler: frontier | linear | parallel | auto
//                        (unknown names are a usage error)
//   --threads=N          host worker threads for --scheduler=parallel
//   --steal=on|off       work-stealing shard scheduling for the parallel
//                        engine (default on; off pins static blocks)
//   --ff=on|off          selectable-fidelity fast-forward: analytic
//                        skip-ahead over proven-quiet windows (default
//                        off; results are bit-identical either way —
//                        this is purely a wall-clock knob)
//   --checkpoint-every=N capture a deterministic snapshot every N cycles
//                        into a checkpoint ring (tools/ttreplay,
//                        tools/fault_bisect; omit the flag for off —
//                        an explicit =0 is a usage error)
//   --jobs=N             host worker pool size for batch consumers
//                        (the scenario-server matrix tier; 0/unset =
//                        the bench's own default)
//
// Every numeric flag is strictly validated: empty values, trailing
// garbage, and signs are usage errors with a diagnostic, never
// silently-wrapped garbage (strtoul happily wraps "-2" to 4e9).
//
// With no flags the benches run with null sinks, no faults, and their
// built-in seeds — the default-off path the determinism guarantees are
// stated against. All flags compose: a bench that attaches its machines
// and substrates through the harness gets the full surface for free.
#pragma once

#include <cstdint>
#include <string>

#include "hwsim/fault_plan.hpp"
#include "hwsim/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "substrate/substrate.hpp"

namespace iw::bench {

class Harness {
 public:
  /// Consume the harness flags from argv (other arguments are ignored
  /// so benches can keep their own). Returns false and prints a
  /// diagnostic on a malformed flag.
  bool parse(int argc, char** argv);

  // --- observability sinks (null unless the matching flag was given) ---
  [[nodiscard]] obs::TraceRecorder* tracer() {
    return trace_path_.empty() ? nullptr : &tracer_;
  }
  [[nodiscard]] obs::MetricsRegistry* metrics() {
    return metrics_path_.empty() ? nullptr : &metrics_;
  }

  /// Mark the start of a logical run (one Chrome-trace process per
  /// call). No-op unless tracing was requested.
  void begin_run(const std::string& label);

  /// Attach the requested sinks to a machine about to run.
  void attach(hwsim::Machine& m, const std::string& label);

  /// Attach sinks (and the parsed fault plan, if any) to an analytic
  /// substrate: the tab_* benches' path onto the shared fabric.
  void attach(substrate::AnalyticSubstrate& sub, const std::string& label);

  // --- config plumbing ---
  /// Install the fault plan, fault seed, and (only if --seed was given)
  /// the experiment seed on a machine config.
  void apply(hwsim::MachineConfig& mc) const;

  /// Experiment seed: --seed=N, else `fallback` (the bench's default).
  [[nodiscard]] std::uint64_t seed(std::uint64_t fallback = 42) const {
    return seed_set_ ? seed_ : fallback;
  }
  [[nodiscard]] bool seed_overridden() const { return seed_set_; }

  [[nodiscard]] bool faults_enabled() const { return plan_.enabled; }
  [[nodiscard]] const hwsim::FaultPlan& fault_plan() const { return plan_; }

  /// --scheduler=NAME, else `fallback` (the bench's default).
  [[nodiscard]] hwsim::SchedulerKind scheduler(
      hwsim::SchedulerKind fallback) const {
    return scheduler_set_ ? scheduler_ : fallback;
  }
  [[nodiscard]] bool scheduler_overridden() const { return scheduler_set_; }
  [[nodiscard]] unsigned threads() const { return threads_; }
  [[nodiscard]] bool work_stealing() const { return steal_; }
  [[nodiscard]] bool fast_forward() const { return ff_; }
  /// --checkpoint-every=N snapshot cadence in cycles (0 = disabled).
  [[nodiscard]] std::uint64_t checkpoint_every() const {
    return checkpoint_every_;
  }
  /// --jobs=N host worker pool size, else `fallback`.
  [[nodiscard]] unsigned jobs(unsigned fallback = 0) const {
    return jobs_set_ ? jobs_ : fallback;
  }

  /// Strict unsigned parse shared by every numeric flag: rejects empty
  /// values, signs, and trailing garbage (strtoul would silently wrap
  /// "-2" and stop at the first non-digit). Benches with their own
  /// numeric flags should use this instead of raw strtoul.
  static bool parse_count(const char* s, std::uint64_t* out);

  /// Parse a scheduler name ("frontier" | "linear" | "parallel" |
  /// "auto"); returns false on anything else. Shared by every bench
  /// that takes scheduler names positionally.
  static bool parse_scheduler(const char* name, hwsim::SchedulerKind* out);
  [[nodiscard]] static const char* scheduler_name(hwsim::SchedulerKind k);

  /// Write any requested output files; call once before exit.
  /// Returns false if a write failed.
  bool finish();

 private:
  std::string trace_path_;
  std::string metrics_path_;
  obs::TraceRecorder tracer_;
  obs::MetricsRegistry metrics_;

  hwsim::FaultPlan plan_;
  std::uint64_t fault_seed_{0};
  /// The injector handed to analytic substrates (machines own theirs).
  hwsim::FaultInjector analytic_faults_;

  std::uint64_t seed_{42};
  bool seed_set_{false};

  hwsim::SchedulerKind scheduler_{hwsim::SchedulerKind::kFrontier};
  bool scheduler_set_{false};
  unsigned threads_{1};
  bool steal_{true};
  bool ff_{false};
  std::uint64_t checkpoint_every_{0};
  unsigned jobs_{0};
  bool jobs_set_{false};
};

}  // namespace iw::bench
