// §IV-D table: virtine start-up overheads across spawn paths and
// bespoke context specs. Paper: "start-up overheads as low as 100 µs".
#include <cstdio>

#include "harness.hpp"
#include "virtine/wasp.hpp"

using namespace iw;
using namespace iw::virtine;

namespace {

bench::Harness harness;
substrate::AnalyticSubstrate* g_sub = nullptr;

GuestFn fib_guest(int n) {
  return [n](GuestEnv& env) -> GuestResult {
    env.store(0, 0);
    env.store(1, 1);
    for (int i = 2; i <= n; ++i) {
      env.store(i, env.load(i - 1) + env.load(i - 2));
    }
    return {env.load(n), static_cast<Cycles>(n) * 12};
  };
}

GuestFn echo_guest() {
  return [](GuestEnv& env) -> GuestResult {
    // Touch a request buffer and produce a response (FaaS echo body).
    for (std::size_t i = 0; i < 64; ++i) env.store(i, 0x55);
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < 64; ++i) sum += env.load(i);
    return {sum, 900};
  };
}

void run_spec(const char* fn_name, const GuestFn& fn,
              const char* spec_name, const ContextSpec& spec) {
  Wasp w;
  w.bind_substrate(g_sub, 0);
  w.prepare_snapshot(spec);
  w.warm_pool(spec, 4);
  const auto cold = w.invoke(spec, SpawnPath::kCold, fn);
  const auto pooled = w.invoke(spec, SpawnPath::kPooled, fn);
  const auto snap = w.invoke(spec, SpawnPath::kSnapshot, fn);
  std::printf("%-6s %-10s %10.1f %10.1f %10.1f   %s\n", fn_name, spec_name,
              w.startup_us(cold.startup_cycles),
              w.startup_us(pooled.startup_cycles),
              w.startup_us(snap.startup_cycles), spec.describe().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (!harness.parse(argc, argv)) return 2;
  substrate::AnalyticSubstrate sub(1, harness.seed());
  harness.attach(sub, "virtine-startup");
  g_sub = &sub;
  std::printf("== virtine start-up latency (us, 1 GHz cost reference) ==\n");
  std::printf("%-6s %-10s %10s %10s %10s   %s\n", "fn", "context",
              "cold_us", "pooled_us", "snap_us", "spec");
  run_spec("fib", fib_guest(25), "minimal", ContextSpec::minimal());
  run_spec("fib", fib_guest(25), "faas", ContextSpec::faas_handler());
  run_spec("echo", echo_guest(), "faas", ContextSpec::faas_handler());
  run_spec("echo", echo_guest(), "unikernel", ContextSpec::unikernel());

  std::printf(
      "\nbaselines for scale: fork+exec of a Linux process is O(1000+ us);\n"
      "a plain function call is O(0.01 us). Virtines sit in between, and\n"
      "the cached paths reach the ~100 us regime the paper reports.\n");

  // Pool-depth ablation: repeated invocations through a small pool.
  std::printf("\n-- sustained invocations through a pool of 4 --\n");
  Wasp w;
  w.bind_substrate(g_sub, 0);
  const auto spec = ContextSpec::faas_handler();
  w.warm_pool(spec, 4);
  w.prepare_snapshot(spec);
  for (int i = 0; i < 8; ++i) {
    const auto inv = w.invoke(spec, SpawnPath::kPooled, fib_guest(10));
    std::printf("invoke %d: startup %.1f us (%s)\n", i,
                w.startup_us(inv.startup_cycles),
                i < 4 ? "pool hit" : "pool miss -> cold");
  }
  return harness.finish() ? 0 : 1;
}
