// §V-C extension table: sub-page transparent far memory via compiler
// blending — object granularity (CARAT-informed, trap-free) vs the
// page-granularity swapping baseline, across local-memory fractions and
// access skews. The paper proposes this as blending's first candidate
// application; there is no published figure, so this table records the
// predicted regime map.
#include <cstdio>
#include <vector>

#include "blending/farmem.hpp"
#include "common/rng.hpp"
#include "harness.hpp"

using namespace iw;
using namespace iw::blending;

namespace {

bench::Harness harness;

struct Workload {
  const char* name;
  double hot_fraction;   // fraction of objects that are hot
  double hot_bias;       // probability an access goes to the hot set
};

struct Result {
  double page_avg;
  double page_inj_avg;  // page swap with branch-injected #PF (§V-D)
  double obj_avg;
  double page_amp;
  double obj_amp;
};

Result run(const Workload& w, std::uint64_t local_bytes) {
  FarMemConfig cfg;
  cfg.local_bytes = local_bytes;
  ObjectFarMem ofm(cfg);
  PageSwapFarMem pfm(cfg);
  // Cross-subsystem synthesis: pipeline-injected exceptions (§V-D)
  // collapse the page-fault trap from ~2800 cycles to a predicted-
  // branch-like entry; the transfer amplification remains.
  FarMemConfig inj = cfg;
  inj.fault_trap = 40;
  PageSwapFarMem pfm_inj(inj);

  const int kObjects = 16'384;  // 16k x 64 B = 1 MiB working set
  std::vector<Addr> objs;
  objs.reserve(kObjects);
  for (int i = 0; i < kObjects; ++i) objs.push_back(ofm.alloc(64));

  Rng rng(harness.seed());
  std::vector<int> hot;
  const int hot_n = std::max(1, static_cast<int>(kObjects * w.hot_fraction));
  for (int i = 0; i < hot_n; ++i) {
    hot.push_back(static_cast<int>(rng.uniform(0, kObjects - 1)));
  }

  Cycles oc = 0, pc = 0, pic = 0;
  const int kAccesses = 60'000;
  for (int i = 0; i < kAccesses; ++i) {
    const int idx = rng.chance(w.hot_bias)
                        ? hot[rng.uniform(0, hot.size() - 1)]
                        : static_cast<int>(rng.uniform(0, kObjects - 1));
    const bool wr = rng.chance(0.3);
    oc += ofm.access(objs[idx], 8, wr);
    pc += pfm.access(static_cast<Addr>(idx) * 64, 8, wr);
    pic += pfm_inj.access(static_cast<Addr>(idx) * 64, 8, wr);
  }
  return {static_cast<double>(pc) / kAccesses,
          static_cast<double>(pic) / kAccesses,
          static_cast<double>(oc) / kAccesses,
          pfm.stats().fetch_amplification(),
          ofm.stats().fetch_amplification()};
}

}  // namespace

int main(int argc, char** argv) {
  if (!harness.parse(argc, argv)) return 2;
  std::printf("== far memory: page-granularity swap vs object-granularity "
              "blending ==\n");
  std::printf("(1 MiB of 64 B objects; avg access cycles and network fetch "
              "amplification)\n\n");
  std::printf("%-14s %10s %10s %12s %10s %8s %9s %9s\n", "workload",
              "local_frac", "page_avg", "page+injPF", "obj_avg",
              "speedup", "page_amp", "obj_amp");

  const std::vector<Workload> workloads = {
      {"skewed-90/10", 0.10, 0.90},
      {"skewed-80/20", 0.20, 0.80},
      {"uniform", 1.00, 0.00},
  };
  for (const auto& w : workloads) {
    for (std::uint64_t frac_pct : {50, 25, 12}) {
      const std::uint64_t local = (1u << 20) * frac_pct / 100;
      const auto r = run(w, local);
      std::printf(
          "%-14s %9llu%% %10.0f %12.0f %10.0f %7.2fx %9.1f %9.1f\n",
          w.name, static_cast<unsigned long long>(frac_pct), r.page_avg,
          r.page_inj_avg, r.obj_avg, r.page_avg / r.obj_avg, r.page_amp,
          r.obj_amp);
    }
  }
  std::printf(
      "\nshape: object granularity wins everywhere; injected exceptions\n"
      "(pipeline interrupts, §V-D) shave the baseline's trap cost but\n"
      "cannot fix its amplification; the gap explodes on\n"
      "skewed access (the hot set fits locally at object granularity but\n"
      "is diluted 64x by cold page-neighbors at page granularity), and\n"
      "fetch amplification drops by 1-2 orders of magnitude.\n");
  return harness.finish() ? 0 : 1;
}
