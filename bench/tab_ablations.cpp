// Ablations over the design choices DESIGN.md §4 calls out:
//   A. TPAL chunk size (compiler check spacing) vs heartbeat
//      responsiveness and overhead — the knob that *is* the Figs. 3/4
//      story.
//   B. Compiler-timing budget vs instrumentation overhead (the tradeoff
//      curve behind §IV-C).
//   C. Coherence-deactivation coverage: what fraction of eligible
//      regions the language can actually prove private (§V-G: high-
//      level languages as enablers).
//   D. Virtine pool depth vs p99 startup under bursty load.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "coherence/simulator.hpp"
#include "harness.hpp"
#include "common/rng.hpp"
#include "heartbeat/fork_join.hpp"
#include "heartbeat/tpal.hpp"
#include "ir/builder.hpp"
#include "ir/interp.hpp"
#include "passes/timing_placement.hpp"
#include "omp/runtime.hpp"
#include "virtine/wasp.hpp"
#include "workloads/pbbs_traces.hpp"

using namespace iw;

namespace {

bench::Harness harness;

void ablation_chunk() {
  std::printf("-- A. TPAL chunk size (8 workers, ♥=20us, KNL) --\n");
  std::printf("%8s %14s %12s %12s\n", "chunk", "beats_handled",
              "overhead", "makespan_Mc");
  for (std::uint64_t chunk : {8u, 32u, 128u, 512u, 2048u}) {
    hwsim::MachineConfig mc;
    mc.num_cores = 8;
    mc.costs = hwsim::CostModel::knl();
    mc.max_advances = 2'000'000'000ULL;
    harness.apply(mc);
    hwsim::Machine m(mc);
    harness.attach(m, "ablation-A/chunk-" + std::to_string(chunk));
    nautilus::Kernel k(m);
    k.attach();
    heartbeat::NautilusHeartbeat hb(m);
    heartbeat::TpalConfig cfg;
    cfg.num_workers = 8;
    cfg.total_iters = 400'000;
    cfg.cycles_per_iter = 30;
    cfg.chunk = chunk;
    cfg.heartbeat_period = mc.costs.freq.us_to_cycles(20.0);
    const auto res = heartbeat::TpalRuntime(k, cfg, &hb).run();
    const double overhead =
        static_cast<double>(res.overhead_cycles) /
        static_cast<double>(res.work_cycles);
    std::printf("%8llu %14llu %11.2f%% %12.2f\n",
                static_cast<unsigned long long>(chunk),
                static_cast<unsigned long long>(res.beats_handled),
                100 * overhead,
                static_cast<double>(res.makespan) / 1e6);
  }
  std::printf("(small chunks: responsive promotion, more poll overhead; "
              "large chunks: beats wait at chunk boundaries)\n\n");
}

void ablation_timing_budget() {
  std::printf("-- B. compiler-timing budget vs overhead (sum_array) --\n");
  std::printf("%10s %12s %10s\n", "budget", "overhead", "fires");
  for (Cycles budget : {60u, 120u, 300u, 1'000u, 5'000u, 50'000u}) {
    ir::Module base_m;
    ir::Function* base_f = ir::programs::sum_array(base_m);
    ir::Interp base(base_m);
    const auto b = base.run(base_f->id(), {0x100000, 20'000});

    ir::Module m;
    ir::Function* f = ir::programs::sum_array(m);
    passes::inject_timing(*f, budget);
    unsigned fires = 0;
    ir::InterpHooks hooks;
    hooks.on_timing = [&] { ++fires; };
    ir::Interp in(m, hooks);
    const auto r = in.run(f->id(), {0x100000, 20'000});
    std::printf("%10llu %11.2f%% %10u\n",
                static_cast<unsigned long long>(budget),
                100 * (static_cast<double>(r.cycles) /
                           static_cast<double>(b.cycles) -
                       1.0),
                fires);
  }
  std::printf("(the paper's granularity/overhead tradeoff: sub-600-cycle "
              "budgets are usable at single-digit overheads)\n\n");
}

void ablation_deactivation_coverage() {
  std::printf("-- C. deactivation coverage (map kernel, 24 cores) --\n");
  std::printf("%10s %10s %12s\n", "coverage", "speedup", "energy_cut");
  workloads::PbbsParams p;
  p.cores = 24;
  p.elements = 240'000;
  p.rounds = 3;
  auto base_trace = workloads::pbbs_map(p);

  coherence::SimConfig cfg;
  cfg.num_cores = 24;
  cfg.noc.num_cores = 24;
  cfg.private_cache = coherence::CacheConfig{64 * 1024, 8, 64};
  cfg.selective_deactivation = false;
  substrate::AnalyticSubstrate sub(24, harness.seed());
  harness.attach(sub, "ablation-C/coverage");
  coherence::CoherenceSim base(cfg, sub.rng_stream("coherence"));
  base.bind_substrate(&sub);
  const auto b = base.run(base_trace);

  for (double coverage : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // The language proves only `coverage` of the private regions;
    // the rest fall back to kShared (fully coherent).
    auto trace = workloads::pbbs_map(p);
    Rng rng(7);
    for (auto& r : trace.regions) {
      if (r.cls == coherence::RegionClass::kTaskPrivate &&
          !rng.chance(coverage)) {
        r.cls = coherence::RegionClass::kShared;
      }
    }
    auto dcfg = cfg;
    dcfg.selective_deactivation = true;
    sub.reset_clocks();
    coherence::CoherenceSim sim(dcfg, sub.rng_stream("coherence"));
    sim.bind_substrate(&sub);
    const auto d = sim.run(trace);
    std::printf("%9.0f%% %9.2fx %11.1f%%\n", 100 * coverage,
                static_cast<double>(b.total_latency) /
                    static_cast<double>(d.total_latency),
                100 * (1.0 - d.uncore_energy_pj() / b.uncore_energy_pj()));
  }
  std::printf("(benefit scales with what the language can prove — §V-G's "
              "'high-level parallel languages as enablers')\n\n");
}

void ablation_pool_depth() {
  std::printf("-- D. virtine pool depth vs p99 startup (bursty load) --\n");
  std::printf("%6s %12s %12s\n", "pool", "p50_us", "p99_us");
  using namespace iw::virtine;
  substrate::AnalyticSubstrate sub(1, harness.seed());
  harness.attach(sub, "ablation-D/pool");
  for (unsigned depth : {0u, 2u, 4u, 8u}) {
    Wasp w;
    w.bind_substrate(&sub, 0);
    const auto spec = ContextSpec::faas_handler();
    w.prepare_snapshot(spec);
    w.warm_pool(spec, depth);
    Rng rng(5);
    std::vector<double> lat;
    for (int i = 0; i < 300; ++i) {
      // Bursts of up to 6 back-to-back requests drain the pool.
      const int burst = 1 + static_cast<int>(rng.uniform(0, 5));
      for (int b2 = 0; b2 < burst; ++b2) {
        const auto inv =
            w.invoke(spec, depth > 0 ? SpawnPath::kPooled
                                     : SpawnPath::kSnapshot,
                     [](GuestEnv&) { return GuestResult{0, 1'000}; });
        lat.push_back(w.startup_us(inv.startup_cycles));
      }
      w.warm_pool(spec, depth);  // refill between bursts
    }
    std::sort(lat.begin(), lat.end());
    std::printf("%6u %12.1f %12.1f\n", depth, lat[lat.size() / 2],
                lat[lat.size() * 99 / 100]);
  }
  std::printf("(deeper pools absorb bursts; pool misses degrade to the "
              "cold path)\n");
}

}  // namespace

void ablation_forkjoin_speedup() {
  std::printf("\n-- E. fork-join heartbeat speedup (tree-sum, depth 18, "
              "♥=20us) --\n");
  std::printf("%8s %12s %10s %12s %8s\n", "workers", "makespan_Mc",
              "speedup", "promotions", "steals");
  Cycles serial = 0;
  for (unsigned w : {1u, 2u, 4u, 8u, 16u}) {
    hwsim::MachineConfig mc;
    mc.num_cores = w;
    mc.costs = hwsim::CostModel::knl();
    mc.max_advances = 2'000'000'000ULL;
    harness.apply(mc);
    hwsim::Machine m(mc);
    harness.attach(m, "ablation-E/workers-" + std::to_string(w));
    nautilus::Kernel k(m);
    k.attach();
    heartbeat::NautilusHeartbeat hb(m);
    heartbeat::ForkJoinConfig cfg;
    cfg.num_workers = w;
    cfg.tree_depth = 18;
    cfg.heartbeat_period =
        w > 1 ? mc.costs.freq.us_to_cycles(20.0) : 0;
    const auto res =
        heartbeat::ForkJoinTpal(k, cfg, w > 1 ? &hb : nullptr).run();
    if (w == 1) serial = res.makespan;
    std::printf("%8u %12.2f %9.2fx %12llu %8llu\n", w,
                static_cast<double>(res.makespan) / 1e6,
                static_cast<double>(serial) /
                    static_cast<double>(res.makespan),
                static_cast<unsigned long long>(res.promotions),
                static_cast<unsigned long long>(res.steals));
  }
  std::printf("(promotion at heartbeat rate materializes just enough "
              "parallelism; overheads stay bounded)\n");
}

void ablation_dynamic_schedule() {
  std::printf("\n-- F. omp schedule(static) vs schedule(dynamic) "
              "dispenser contention --\n");
  std::printf("%8s %14s %14s\n", "threads", "static_Mc", "dynamic_Mc");
  const auto app = workloads::sp_mini(24, 2);
  for (unsigned p : {4u, 16u, 32u}) {
    omp::OmpConfig cfg;
    cfg.mode = omp::OmpMode::kRTK;
    cfg.num_threads = p;
    const auto stat = omp::run_miniapp(app, cfg).makespan;
    cfg.dynamic_chunk = 8;
    const auto dyn = omp::run_miniapp(app, cfg).makespan;
    std::printf("%8u %14.2f %14.2f\n", p,
                static_cast<double>(stat) / 1e6,
                static_cast<double>(dyn) / 1e6);
  }
  std::printf("(the shared dispenser serializes at scale — why NAS "
              "defaults to static)\n");
}

int main(int argc, char** argv) {
  if (!harness.parse(argc, argv)) return 2;
  std::printf("== design-choice ablations ==\n\n");
  ablation_chunk();
  ablation_timing_budget();
  ablation_deactivation_coverage();
  ablation_pool_depth();
  ablation_forkjoin_speedup();
  ablation_dynamic_schedule();
  return harness.finish() ? 0 : 1;
}
