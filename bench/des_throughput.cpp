// Wall-clock throughput of the DES scheduling core: simulated events per
// second under an IPI+LAPIC-heavy heartbeat workload (the fig3 interrupt
// pattern) at 2/8/64/256 cores, for both schedulers:
//   frontier — the O(log N) incremental frontier index (default), and
//   linear   — the seed O(N)-scan reference.
// The two must execute bit-identical schedules (asserted here via the
// virtual end state, and bit-for-bit in tests/hwsim/determinism_test);
// only the wall clock may differ.
//
// Usage: des_throughput [--smoke] [--out=FILE]
//   --smoke     ~10x shorter runs (CI artifact mode)
//   --out=FILE  JSON output path (default BENCH_des_throughput.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "des_workload.hpp"

using namespace iw;

namespace {

struct Row {
  unsigned cores{0};
  const char* scheduler{""};
  std::uint64_t advances{0};
  std::uint64_t irqs{0};
  Cycles sim_time{0};
  double wall_ms{0.0};
  double events_per_sec{0.0};
};

Row run_one(unsigned cores, hwsim::SchedulerKind sched, Cycles sim_cycles) {
  bench::DesWorkload w = bench::make_des_workload(cores, sched);
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = w.machine->run_until(sim_cycles);
  const auto t1 = std::chrono::steady_clock::now();
  if (!ok) {
    std::fprintf(stderr, "des_throughput: watchdog fired unexpectedly\n");
    std::exit(1);
  }
  Row r;
  r.cores = cores;
  r.scheduler =
      sched == hwsim::SchedulerKind::kFrontier ? "frontier" : "linear";
  r.advances = w.machine->total_advances();
  r.irqs = *w.irqs_handled;
  r.sim_time = w.machine->now();
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events_per_sec =
      r.wall_ms > 0.0 ? 1000.0 * static_cast<double>(r.advances) / r.wall_ms
                      : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_des_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<unsigned> core_counts{2, 8, 64, 256};
  std::vector<Row> rows;
  std::vector<double> speedups;  // frontier/linear per core count

  std::printf("%-6s %-9s %12s %10s %10s %12s\n", "cores", "sched",
              "advances", "irqs", "wall_ms", "events/s");
  for (const unsigned cores : core_counts) {
    // Size simulated time so each config does a comparable amount of
    // DES work (~advances) regardless of core count: advances scale
    // roughly with cores x sim_time / step.
    const Cycles sim = std::max<Cycles>(400'000'000 / cores, 1'000'000) /
                       (smoke ? 10 : 1);
    const Row f = run_one(cores, hwsim::SchedulerKind::kFrontier, sim);
    const Row l = run_one(cores, hwsim::SchedulerKind::kLinearScan, sim);
    // Equivalence guard: both schedulers must have executed the same
    // virtual-time schedule.
    if (f.advances != l.advances || f.irqs != l.irqs ||
        f.sim_time != l.sim_time) {
      std::fprintf(stderr,
                   "des_throughput: scheduler divergence at %u cores "
                   "(advances %llu vs %llu, irqs %llu vs %llu)\n",
                   cores, static_cast<unsigned long long>(f.advances),
                   static_cast<unsigned long long>(l.advances),
                   static_cast<unsigned long long>(f.irqs),
                   static_cast<unsigned long long>(l.irqs));
      return 1;
    }
    for (const Row& r : {f, l}) {
      std::printf("%-6u %-9s %12llu %10llu %10.1f %12.0f\n", r.cores,
                  r.scheduler, static_cast<unsigned long long>(r.advances),
                  static_cast<unsigned long long>(r.irqs), r.wall_ms,
                  r.events_per_sec);
      rows.push_back(r);
    }
    const double speedup =
        l.events_per_sec > 0.0 ? f.events_per_sec / l.events_per_sec : 0.0;
    speedups.push_back(speedup);
    std::printf("%-6u speedup   %.2fx\n", cores, speedup);
  }

  std::FILE* fp = std::fopen(out.c_str(), "w");
  if (fp == nullptr) {
    std::fprintf(stderr, "des_throughput: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(fp,
               "{\n  \"bench\": \"des_throughput\",\n"
               "  \"workload\": \"ipi+lapic heartbeat broadcast, 200-cycle "
               "spin steps, 20k-cycle period\",\n"
               "  \"smoke\": %s,\n  \"results\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(fp,
                 "    {\"cores\": %u, \"scheduler\": \"%s\", \"advances\": "
                 "%llu, \"irqs\": %llu, \"sim_cycles\": %llu, \"wall_ms\": "
                 "%.2f, \"events_per_sec\": %.0f}%s\n",
                 r.cores, r.scheduler,
                 static_cast<unsigned long long>(r.advances),
                 static_cast<unsigned long long>(r.irqs),
                 static_cast<unsigned long long>(r.sim_time), r.wall_ms,
                 r.events_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(fp, "  ],\n  \"speedup_frontier_vs_linear\": {");
  for (std::size_t i = 0; i < core_counts.size(); ++i) {
    std::fprintf(fp, "%s\"%u\": %.2f", i ? ", " : "", core_counts[i],
                 speedups[i]);
  }
  std::fprintf(fp, "}\n}\n");
  std::fclose(fp);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
