// Wall-clock throughput of the DES scheduling core: simulated events per
// second under an IPI+LAPIC-heavy heartbeat workload (the fig3 interrupt
// pattern) at 2/8/64/256 cores, for every scheduler:
//   frontier — the O(log N) incremental frontier index (default),
//   linear   — the seed O(N)-scan reference,
//   parallel — the epoch-synchronized conservative parallel DES
//              (ShardPolicy::kPerCore; host threads via --threads), and
//   auto     — the construction-time linear/frontier pick (its 2-core
//              row is the small-machine regression guard: it must not
//              lose to the linear baseline).
// All schedulers must execute bit-identical schedules (asserted here via
// the virtual end state, and bit-for-bit in tests/hwsim); only the wall
// clock may differ. The parallel speedup has two sources: lookahead
// batching (per-core drains replace per-event global scheduling — this
// holds even at --threads=1) and host parallelism on multi-core hosts.
//
// Usage: des_throughput [--smoke] [--out=FILE] [--threads=N]
//   --smoke      ~10x shorter runs (CI artifact mode)
//   --out=FILE   JSON output path (default BENCH_des_throughput.json)
//   --threads=N  host worker threads for the parallel series (default 1,
//                the reproducible baseline; CI may pass its core count)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "des_workload.hpp"

using namespace iw;

namespace {

struct Row {
  unsigned cores{0};
  const char* scheduler{""};
  std::uint64_t advances{0};
  std::uint64_t irqs{0};
  Cycles sim_time{0};
  double wall_ms{0.0};
  double events_per_sec{0.0};
};

const char* sched_label(hwsim::SchedulerKind sched) {
  switch (sched) {
    case hwsim::SchedulerKind::kFrontier: return "frontier";
    case hwsim::SchedulerKind::kLinearScan: return "linear";
    case hwsim::SchedulerKind::kParallelEpoch: return "parallel";
    case hwsim::SchedulerKind::kAuto: return "auto";
  }
  return "?";
}

Row run_one(unsigned cores, hwsim::SchedulerKind sched, Cycles sim_cycles,
            unsigned threads) {
  bench::DesWorkload w =
      bench::make_des_workload(cores, sched, 200, 20'000, threads);
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = w.machine->run_until(sim_cycles);
  const auto t1 = std::chrono::steady_clock::now();
  if (!ok) {
    std::fprintf(stderr, "des_throughput: watchdog fired unexpectedly\n");
    std::exit(1);
  }
  Row r;
  r.cores = cores;
  r.scheduler = sched_label(sched);
  r.advances = w.machine->total_advances();
  r.irqs = w.total_irqs();
  r.sim_time = w.machine->now();
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events_per_sec =
      r.wall_ms > 0.0 ? 1000.0 * static_cast<double>(r.advances) / r.wall_ms
                      : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_des_throughput.json";
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(
          std::strtoul(argv[i] + 10, nullptr, 10));
      if (threads == 0) threads = 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=FILE] [--threads=N]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::vector<unsigned> core_counts{2, 8, 64, 256};
  const std::vector<hwsim::SchedulerKind> scheds{
      hwsim::SchedulerKind::kFrontier,
      hwsim::SchedulerKind::kLinearScan,
      hwsim::SchedulerKind::kParallelEpoch,
      hwsim::SchedulerKind::kAuto,
  };
  std::vector<Row> rows;
  std::vector<double> speedup_frontier;  // frontier/linear per core count
  std::vector<double> speedup_parallel;  // parallel/frontier per core count
  std::vector<double> speedup_auto;      // auto/linear per core count

  std::printf("%-6s %-9s %12s %10s %10s %12s\n", "cores", "sched",
              "advances", "irqs", "wall_ms", "events/s");
  for (const unsigned cores : core_counts) {
    // Size simulated time so each config does a comparable amount of
    // DES work (~advances) regardless of core count: advances scale
    // roughly with cores x sim_time / step.
    const Cycles sim = std::max<Cycles>(400'000'000 / cores, 1'000'000) /
                       (smoke ? 10 : 1);
    std::vector<Row> group;
    for (const hwsim::SchedulerKind sched : scheds) {
      group.push_back(run_one(cores, sched, sim, threads));
    }
    // Equivalence guard: every scheduler must have executed the same
    // virtual-time schedule.
    const Row& f = group[0];
    for (const Row& r : group) {
      if (r.advances != f.advances || r.irqs != f.irqs ||
          r.sim_time != f.sim_time) {
        std::fprintf(stderr,
                     "des_throughput: scheduler divergence at %u cores "
                     "(%s vs %s: advances %llu vs %llu, irqs %llu vs "
                     "%llu)\n",
                     cores, r.scheduler, f.scheduler,
                     static_cast<unsigned long long>(r.advances),
                     static_cast<unsigned long long>(f.advances),
                     static_cast<unsigned long long>(r.irqs),
                     static_cast<unsigned long long>(f.irqs));
        return 1;
      }
      std::printf("%-6u %-9s %12llu %10llu %10.1f %12.0f\n", r.cores,
                  r.scheduler, static_cast<unsigned long long>(r.advances),
                  static_cast<unsigned long long>(r.irqs), r.wall_ms,
                  r.events_per_sec);
      rows.push_back(r);
    }
    const Row& l = group[1];
    const Row& p = group[2];
    const Row& a = group[3];
    const double sf =
        l.events_per_sec > 0.0 ? f.events_per_sec / l.events_per_sec : 0.0;
    const double sp =
        f.events_per_sec > 0.0 ? p.events_per_sec / f.events_per_sec : 0.0;
    const double sa =
        l.events_per_sec > 0.0 ? a.events_per_sec / l.events_per_sec : 0.0;
    speedup_frontier.push_back(sf);
    speedup_parallel.push_back(sp);
    speedup_auto.push_back(sa);
    std::printf("%-6u speedup   frontier/linear %.2fx  parallel/frontier "
                "%.2fx  auto/linear %.2fx\n",
                cores, sf, sp, sa);
  }

  std::FILE* fp = std::fopen(out.c_str(), "w");
  if (fp == nullptr) {
    std::fprintf(stderr, "des_throughput: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(fp,
               "{\n  \"bench\": \"des_throughput\",\n"
               "  \"workload\": \"ipi+lapic heartbeat broadcast, 200-cycle "
               "spin steps, 20k-cycle period\",\n"
               "  \"smoke\": %s,\n  \"host_threads\": %u,\n"
               "  \"results\": [\n",
               smoke ? "true" : "false", threads);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(fp,
                 "    {\"cores\": %u, \"scheduler\": \"%s\", \"advances\": "
                 "%llu, \"irqs\": %llu, \"sim_cycles\": %llu, \"wall_ms\": "
                 "%.2f, \"events_per_sec\": %.0f}%s\n",
                 r.cores, r.scheduler,
                 static_cast<unsigned long long>(r.advances),
                 static_cast<unsigned long long>(r.irqs),
                 static_cast<unsigned long long>(r.sim_time), r.wall_ms,
                 r.events_per_sec, i + 1 < rows.size() ? "," : "");
  }
  const auto write_map = [&](const char* name,
                             const std::vector<double>& v) {
    std::fprintf(fp, "  \"%s\": {", name);
    for (std::size_t i = 0; i < core_counts.size(); ++i) {
      std::fprintf(fp, "%s\"%u\": %.2f", i ? ", " : "", core_counts[i],
                   v[i]);
    }
    std::fprintf(fp, "}");
  };
  std::fprintf(fp, "  ],\n");
  write_map("speedup_frontier_vs_linear", speedup_frontier);
  std::fprintf(fp, ",\n");
  write_map("speedup_parallel_vs_frontier", speedup_parallel);
  std::fprintf(fp, ",\n");
  write_map("speedup_auto_vs_linear", speedup_auto);
  std::fprintf(fp, "\n}\n");
  std::fclose(fp);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
