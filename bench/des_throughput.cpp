// Wall-clock throughput of the DES scheduling core: simulated events per
// second under an IPI+LAPIC-heavy heartbeat workload (the fig3 interrupt
// pattern) at 2/8/64/256 cores, for every scheduler:
//   frontier — the O(log N) incremental frontier index (default),
//   linear   — the seed O(N)-scan reference,
//   parallel — the epoch-synchronized conservative parallel DES
//              (ShardPolicy::kPerCore; host threads via --threads), and
//   auto     — the construction-time linear/frontier pick (its 2-core
//              row is the small-machine regression guard: it must not
//              lose to the linear baseline).
// All schedulers must execute bit-identical schedules (asserted here via
// the virtual end state, and bit-for-bit in tests/hwsim); only the wall
// clock may differ. The parallel speedup has two sources: lookahead
// batching (per-core drains replace per-event global scheduling — this
// holds even at --threads=1) and host parallelism on multi-core hosts.
//
// A second section measures the host-thread axis: a `host_threads ×
// cores` matrix over 1k–8k simulated cores, parallel scheduler with
// work stealing, at 1/2/4/8 host threads — with a frontier run per core
// count as the equivalence reference. The JSON records the matrix, the
// per-core-count thread-scaling ratios (speedup_threads_vs_1), and the
// measuring host's CPU count, so tools/check_des_regression.py can
// guard the ratios host-awarely (a 1-CPU box cannot express 4-way
// speedup; the guard only requires no collapse there).
//
// Usage: des_throughput [--smoke] [--out=FILE] [--threads=N]
//   --smoke      ~10x shorter runs (CI artifact mode)
//   --out=FILE   JSON output path (default BENCH_des_throughput.json)
//   --threads=N  host worker threads for the parallel series (default 1,
//                the reproducible baseline; CI may pass its core count)
//   --steal=on|off  work-stealing shard scheduling in the parallel
//                engine (default on; off pins the static blocks)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "des_workload.hpp"
#include "harness.hpp"

using namespace iw;

namespace {

struct Row {
  unsigned cores{0};
  const char* scheduler{""};
  unsigned threads{1};
  std::uint64_t advances{0};
  std::uint64_t irqs{0};
  Cycles sim_time{0};
  double wall_ms{0.0};
  double events_per_sec{0.0};
};

const char* sched_label(hwsim::SchedulerKind sched) {
  switch (sched) {
    case hwsim::SchedulerKind::kFrontier: return "frontier";
    case hwsim::SchedulerKind::kLinearScan: return "linear";
    case hwsim::SchedulerKind::kParallelEpoch: return "parallel";
    case hwsim::SchedulerKind::kAuto: return "auto";
  }
  return "?";
}

/// Best-of-`repeats` measurement (fresh workload each repeat; minimum
/// wall time wins). Short smoke rows are scheduler-noise-dominated on a
/// loaded host, and the max-throughput repeat is the stable statistic
/// the CI ratio guard needs. The simulated results must be identical
/// across repeats (determinism), which is asserted here for free.
Row run_one(unsigned cores, hwsim::SchedulerKind sched, Cycles sim_cycles,
            unsigned threads, bool steal, int repeats) {
  Row r;
  r.cores = cores;
  r.scheduler = sched_label(sched);
  r.threads = threads;
  for (int rep = 0; rep < repeats; ++rep) {
    bench::DesWorkload w =
        bench::make_des_workload(cores, sched, 200, 20'000, threads);
    w.machine->set_work_stealing(steal);
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = w.machine->run_until(sim_cycles);
    const auto t1 = std::chrono::steady_clock::now();
    if (!ok) {
      std::fprintf(stderr, "des_throughput: watchdog fired unexpectedly\n");
      std::exit(1);
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0) {
      r.advances = w.machine->total_advances();
      r.irqs = w.total_irqs();
      r.sim_time = w.machine->now();
      r.wall_ms = wall_ms;
    } else {
      if (r.advances != w.machine->total_advances() ||
          r.irqs != w.total_irqs() || r.sim_time != w.machine->now()) {
        std::fprintf(stderr,
                     "des_throughput: repeat diverged (%s, %u cores)\n",
                     r.scheduler, cores);
        std::exit(1);
      }
      r.wall_ms = std::min(r.wall_ms, wall_ms);
    }
  }
  r.events_per_sec =
      r.wall_ms > 0.0 ? 1000.0 * static_cast<double>(r.advances) / r.wall_ms
                      : 0.0;
  return r;
}

/// Hot-path allocation discipline: growth reallocations per million
/// events, measured over a post-warmup window (the first fifth of the
/// run absorbs slab growth past MachineConfig::inbox_reserve; steady
/// state should add ~nothing).
double measure_allocs_per_million(unsigned cores,
                                  hwsim::SchedulerKind sched,
                                  Cycles sim_cycles, unsigned threads,
                                  bool steal) {
  bench::DesWorkload w =
      bench::make_des_workload(cores, sched, 200, 20'000, threads);
  w.machine->set_work_stealing(steal);
  if (!w.machine->run_until(sim_cycles / 5)) std::exit(1);
  const std::uint64_t a0 = w.machine->hot_path_allocs();
  const std::uint64_t adv0 = w.machine->total_advances();
  if (!w.machine->run_until(sim_cycles)) std::exit(1);
  const std::uint64_t da = w.machine->hot_path_allocs() - a0;
  const std::uint64_t dadv = w.machine->total_advances() - adv0;
  return dadv > 0
             ? 1e6 * static_cast<double>(da) / static_cast<double>(dadv)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_des_throughput.json";
  unsigned threads = 1;
  bool steal = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      std::uint64_t v = 0;
      if (!bench::Harness::parse_count(argv[i] + 10, &v) || v == 0 ||
          v > 4096) {
        std::fprintf(stderr,
                     "--threads: expected a positive integer (<= 4096), "
                     "got '%s'\n",
                     argv[i] + 10);
        return 2;
      }
      threads = static_cast<unsigned>(v);
    } else if (std::strcmp(argv[i], "--steal=on") == 0) {
      steal = true;
    } else if (std::strcmp(argv[i], "--steal=off") == 0) {
      steal = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=FILE] [--threads=N] "
                   "[--steal=on|off]\n",
                   argv[0]);
      return 2;
    }
  }
  // Short smoke rows need more repeats to find the clean measurement.
  const int repeats = smoke ? 3 : 2;

  const std::vector<unsigned> core_counts{2, 8, 64, 256};
  const std::vector<hwsim::SchedulerKind> scheds{
      hwsim::SchedulerKind::kFrontier,
      hwsim::SchedulerKind::kLinearScan,
      hwsim::SchedulerKind::kParallelEpoch,
      hwsim::SchedulerKind::kAuto,
  };
  std::vector<Row> rows;
  std::vector<double> speedup_frontier;  // frontier/linear per core count
  std::vector<double> speedup_parallel;  // parallel/frontier per core count
  std::vector<double> speedup_auto;      // auto/linear per core count
  std::vector<double> hot_eps_frontier;  // hotpath series, per core count
  std::vector<double> hot_eps_parallel;
  std::vector<double> hot_allocs;        // allocs per million events

  std::printf("%-6s %-9s %12s %10s %10s %12s\n", "cores", "sched",
              "advances", "irqs", "wall_ms", "events/s");
  for (const unsigned cores : core_counts) {
    // Size simulated time so each config does a comparable amount of
    // DES work (~advances) regardless of core count: advances scale
    // roughly with cores x sim_time / step.
    const Cycles sim = std::max<Cycles>(400'000'000 / cores, 1'000'000) /
                       (smoke ? 10 : 1);
    std::vector<Row> group;
    for (const hwsim::SchedulerKind sched : scheds) {
      group.push_back(run_one(cores, sched, sim, threads, steal, repeats));
    }
    // Equivalence guard: every scheduler must have executed the same
    // virtual-time schedule.
    const Row& f = group[0];
    for (const Row& r : group) {
      if (r.advances != f.advances || r.irqs != f.irqs ||
          r.sim_time != f.sim_time) {
        std::fprintf(stderr,
                     "des_throughput: scheduler divergence at %u cores "
                     "(%s vs %s: advances %llu vs %llu, irqs %llu vs "
                     "%llu)\n",
                     cores, r.scheduler, f.scheduler,
                     static_cast<unsigned long long>(r.advances),
                     static_cast<unsigned long long>(f.advances),
                     static_cast<unsigned long long>(r.irqs),
                     static_cast<unsigned long long>(f.irqs));
        return 1;
      }
      std::printf("%-6u %-9s %12llu %10llu %10.1f %12.0f\n", r.cores,
                  r.scheduler, static_cast<unsigned long long>(r.advances),
                  static_cast<unsigned long long>(r.irqs), r.wall_ms,
                  r.events_per_sec);
      rows.push_back(r);
    }
    const Row& l = group[1];
    const Row& p = group[2];
    const Row& a = group[3];
    const double sf =
        l.events_per_sec > 0.0 ? f.events_per_sec / l.events_per_sec : 0.0;
    const double sp =
        f.events_per_sec > 0.0 ? p.events_per_sec / f.events_per_sec : 0.0;
    const double sa =
        l.events_per_sec > 0.0 ? a.events_per_sec / l.events_per_sec : 0.0;
    speedup_frontier.push_back(sf);
    speedup_parallel.push_back(sp);
    speedup_auto.push_back(sa);
    hot_eps_frontier.push_back(f.events_per_sec);
    hot_eps_parallel.push_back(p.events_per_sec);
    const double apm = measure_allocs_per_million(
        cores, hwsim::SchedulerKind::kFrontier, sim, threads, steal);
    hot_allocs.push_back(apm);
    std::printf("%-6u speedup   frontier/linear %.2fx  parallel/frontier "
                "%.2fx  auto/linear %.2fx  allocs/Mevent %.1f\n",
                cores, sf, sp, sa, apm);
  }

  // --- host_threads × cores matrix: 1k–8k simulated cores, parallel
  // engine (work stealing on) at 1/2/4/8 host threads, frontier as the
  // per-core-count equivalence reference. Real host parallelism needs
  // real host CPUs; host_cpus is recorded so the regression guard can
  // judge the thread-scaling ratios against what the box can express.
  const std::vector<unsigned> matrix_cores{1024, 4096, 8192};
  const std::vector<unsigned> matrix_threads{1, 2, 4, 8};
  std::vector<Row> matrix_rows;
  // matrix_scaling[i][j]: cores=matrix_cores[i], threads=matrix_threads[j]
  // (j >= 1), ratio vs the 1-thread parallel run.
  std::vector<std::vector<double>> matrix_scaling;
  std::printf("\n%-6s %-9s %-7s %12s %10s %10s %12s\n", "cores", "sched",
              "threads", "advances", "irqs", "wall_ms", "events/s");
  for (const unsigned cores : matrix_cores) {
    const Cycles sim = std::max<Cycles>(400'000'000 / cores, 500'000) /
                       (smoke ? 10 : 1);
    const Row ref = run_one(cores, hwsim::SchedulerKind::kFrontier, sim, 1,
                            steal, repeats);
    std::printf("%-6u %-9s %-7u %12llu %10llu %10.1f %12.0f\n", ref.cores,
                ref.scheduler, ref.threads,
                static_cast<unsigned long long>(ref.advances),
                static_cast<unsigned long long>(ref.irqs), ref.wall_ms,
                ref.events_per_sec);
    double one_thread_eps = 0.0;
    std::vector<double> ratios;
    for (const unsigned t : matrix_threads) {
      const Row r = run_one(cores, hwsim::SchedulerKind::kParallelEpoch, sim,
                            t, steal, repeats);
      if (r.advances != ref.advances || r.irqs != ref.irqs ||
          r.sim_time != ref.sim_time) {
        std::fprintf(stderr,
                     "des_throughput: matrix divergence at %u cores, %u "
                     "threads (advances %llu vs %llu)\n",
                     cores, t, static_cast<unsigned long long>(r.advances),
                     static_cast<unsigned long long>(ref.advances));
        return 1;
      }
      std::printf("%-6u %-9s %-7u %12llu %10llu %10.1f %12.0f\n", r.cores,
                  r.scheduler, r.threads,
                  static_cast<unsigned long long>(r.advances),
                  static_cast<unsigned long long>(r.irqs), r.wall_ms,
                  r.events_per_sec);
      if (t == 1) {
        one_thread_eps = r.events_per_sec;
      } else {
        ratios.push_back(one_thread_eps > 0.0
                             ? r.events_per_sec / one_thread_eps
                             : 0.0);
      }
      matrix_rows.push_back(r);
    }
    matrix_scaling.push_back(ratios);
    std::printf("%-6u thread scaling vs 1:", cores);
    for (std::size_t j = 1; j < matrix_threads.size(); ++j) {
      std::printf("  %ut %.2fx", matrix_threads[j],
                  matrix_scaling.back()[j - 1]);
    }
    std::printf("\n");
  }

  std::FILE* fp = std::fopen(out.c_str(), "w");
  if (fp == nullptr) {
    std::fprintf(stderr, "des_throughput: cannot write %s\n", out.c_str());
    return 1;
  }
  const auto write_row = [&](const Row& r, bool with_threads, bool last) {
    std::fprintf(fp, "    {\"cores\": %u, \"scheduler\": \"%s\", ",
                 r.cores, r.scheduler);
    if (with_threads) std::fprintf(fp, "\"threads\": %u, ", r.threads);
    std::fprintf(fp,
                 "\"advances\": %llu, \"irqs\": %llu, \"sim_cycles\": "
                 "%llu, \"wall_ms\": %.2f, \"events_per_sec\": %.0f}%s\n",
                 static_cast<unsigned long long>(r.advances),
                 static_cast<unsigned long long>(r.irqs),
                 static_cast<unsigned long long>(r.sim_time), r.wall_ms,
                 r.events_per_sec, last ? "" : ",");
  };
  std::fprintf(fp,
               "{\n  \"bench\": \"des_throughput\",\n"
               "  \"workload\": \"ipi+lapic heartbeat broadcast, 200-cycle "
               "spin steps, 20k-cycle period\",\n"
               "  \"smoke\": %s,\n  \"host_threads\": %u,\n"
               "  \"host_cpus\": %u,\n"
               "  \"results\": [\n",
               smoke ? "true" : "false", threads,
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    write_row(rows[i], false, i + 1 == rows.size());
  }
  std::fprintf(fp, "  ],\n  \"thread_matrix\": [\n");
  for (std::size_t i = 0; i < matrix_rows.size(); ++i) {
    write_row(matrix_rows[i], true, i + 1 == matrix_rows.size());
  }
  std::fprintf(fp, "  ],\n");
  const auto write_map = [&](const char* name,
                             const std::vector<double>& v) {
    std::fprintf(fp, "  \"%s\": {", name);
    for (std::size_t i = 0; i < core_counts.size(); ++i) {
      std::fprintf(fp, "%s\"%u\": %.2f", i ? ", " : "", core_counts[i],
                   v[i]);
    }
    std::fprintf(fp, "}");
  };
  write_map("speedup_frontier_vs_linear", speedup_frontier);
  std::fprintf(fp, ",\n");
  write_map("speedup_parallel_vs_frontier", speedup_parallel);
  std::fprintf(fp, ",\n");
  write_map("speedup_auto_vs_linear", speedup_auto);
  // Hot-path memory-discipline series: per-core-count frontier/parallel
  // events_per_sec at this run's host_threads, the packed heap record
  // size every sift moves, and steady-state growth reallocations per
  // million events (tools/check_des_regression.py --profile=hotpath
  // hard-requires all of these).
  std::fprintf(fp, ",\n  \"hotpath\": {\n    \"bytes_per_hot_event\": %u,\n",
               static_cast<unsigned>(
                   sizeof(hwsim::TimedQueue<hwsim::IrqEvent>::Rec)));
  const auto write_hot_map = [&](const char* name,
                                 const std::vector<double>& v, bool last) {
    std::fprintf(fp, "    \"%s\": {", name);
    for (std::size_t i = 0; i < core_counts.size(); ++i) {
      std::fprintf(fp, "%s\"%u\": %.1f", i ? ", " : "", core_counts[i],
                   v[i]);
    }
    std::fprintf(fp, "}%s\n", last ? "" : ",");
  };
  write_hot_map("events_per_sec", hot_eps_frontier, false);
  write_hot_map("events_per_sec_parallel", hot_eps_parallel, false);
  write_hot_map("allocs_per_million_events", hot_allocs, true);
  std::fprintf(fp, "  },\n  \"speedup_threads_vs_1\": {");
  for (std::size_t i = 0; i < matrix_cores.size(); ++i) {
    std::fprintf(fp, "%s\"%u\": {", i ? ", " : "", matrix_cores[i]);
    for (std::size_t j = 1; j < matrix_threads.size(); ++j) {
      std::fprintf(fp, "%s\"%u\": %.2f", j > 1 ? ", " : "",
                   matrix_threads[j], matrix_scaling[i][j - 1]);
    }
    std::fprintf(fp, "}");
  }
  std::fprintf(fp, "}\n}\n");
  std::fclose(fp);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
