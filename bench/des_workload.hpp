// Shared IPI+LAPIC-heavy DES workload for the scheduler benchmarks
// (des_throughput and the gbench advance_once microbenches): a periodic
// LAPIC timer on CPU 0 whose handler broadcasts an IPI to every other
// core, over cores kept busy with fixed-cost spin steps. This is the
// fig3/heartbeat interrupt pattern at benchmark intensity — the regime
// where per-event scheduler cost dominates the simulator's wall clock.
//
// The workload is shard-safe: all cross-core traffic is the broadcast
// through the IPI fabric, and the IRQ accounting is per-core (padded
// cells, each written only by its own core's handler), so it runs under
// every scheduler including kParallelEpoch with ShardPolicy::kPerCore.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hwsim/lapic.hpp"
#include "hwsim/machine.hpp"

namespace iw::bench {

/// Endless spin work: every core always runnable, constant step cost.
/// Keeps the frontier maximally contended (N candidates every advance).
/// Certifies its steps for fast-forward: a spin step consumes step_
/// cycles and touches nothing else, so the trajectory to any horizon is
/// closed-form (the quiescent-region case the skip-ahead mode exists
/// for — between heartbeats every core is doing exactly this).
class SpinForeverDriver final : public hwsim::CoreDriver {
 public:
  explicit SpinForeverDriver(Cycles step) : step_(step) {}
  bool runnable(hwsim::Core&) override { return true; }
  void step(hwsim::Core& core) override { core.consume(step_); }

  bool plan_fast_forward(hwsim::Core& core, Cycles horizon,
                         hwsim::FastForwardPlan* plan) override {
    // Stepping while clock < horizon executes ceil(gap / step_) steps,
    // the last one carrying the clock to the first multiple at/past the
    // horizon — exactly what the stepped loop would do.
    const Cycles gap = horizon - core.clock();
    const std::uint64_t steps = (gap + step_ - 1) / step_;
    plan->end_clock = core.clock() + steps * step_;
    plan->steps = steps;
    return true;
  }
  // apply_fast_forward: nothing to commit (the spin has no state).

 private:
  Cycles step_;
};

/// Cache-line-private IRQ counter cell (one per core: handlers on
/// different shards must not share a line).
struct alignas(64) IrqCell {
  std::uint64_t v{0};
};

struct DesWorkload {
  std::unique_ptr<hwsim::Machine> machine;
  std::unique_ptr<SpinForeverDriver> driver;
  std::unique_ptr<hwsim::LapicTimer> timer;
  /// Heap storage so the handler closures stay valid across moves of
  /// this struct; cell i is written only by core i's handler.
  std::shared_ptr<std::vector<IrqCell>> irqs_by_core;

  [[nodiscard]] std::uint64_t total_irqs() const {
    std::uint64_t n = 0;
    for (const auto& c : *irqs_by_core) n += c.v;
    return n;
  }
};

/// Build the workload: `period`-cycle heartbeat broadcast + `step`-cycle
/// spin steps on every core. The machine never quiesces; drive it with
/// run_until or advance_n. `threads` is the host worker pool for
/// kParallelEpoch (ignored by the sequential schedulers), which runs
/// this workload with ShardPolicy::kPerCore.
inline DesWorkload make_des_workload(unsigned cores,
                                     hwsim::SchedulerKind sched,
                                     Cycles step = 200,
                                     Cycles period = 20'000,
                                     unsigned threads = 1) {
  DesWorkload w;
  hwsim::MachineConfig mc;
  mc.num_cores = cores;
  mc.scheduler = sched;
  mc.shard_policy = hwsim::ShardPolicy::kPerCore;
  mc.threads = threads;
  w.machine = std::make_unique<hwsim::Machine>(mc);
  w.driver = std::make_unique<SpinForeverDriver>(step);
  w.irqs_by_core = std::make_shared<std::vector<IrqCell>>(cores);

  auto cells = w.irqs_by_core;
  for (unsigned i = 0; i < cores; ++i) {
    auto& core = w.machine->core(i);
    core.set_driver(w.driver.get());
    core.set_irq_handler(0x40, [cells](hwsim::Core& c, int) {
      c.consume(120);  // handler body: promotion-flag write + return
      ++(*cells)[c.id()].v;
      if (c.id() == 0) c.machine().broadcast_ipi(c, 0x40);
    });
  }
  w.timer = std::make_unique<hwsim::LapicTimer>(w.machine->core(0), 0x40);
  w.timer->periodic(period);
  return w;
}

}  // namespace iw::bench
