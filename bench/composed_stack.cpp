// The composed-stack run: heartbeat delivery and coherence-charged
// memory accesses interwoven on ONE machine. Every core runs a
// CoherenceDriver step loop (compute + misses charged by a CoherenceSim
// bound to the machine-as-substrate) with a TPAL-style promotion poll at
// each step boundary, while the Nautilus heartbeat (LAPIC on CPU 0 ->
// IPI broadcast) fires across the same cores. A directory stall
// genuinely delays the next poll; a dropped IPI (--faults=) lands next
// to the miss that preceded it — all on one virtual-cycle axis.
//
//   --trace=FILE   one Chrome trace: hwsim (ipi.*, lapic.*), heartbeat
//                  (heartbeat.beat / poll_consumed) and coherence
//                  (coherence.miss / handoff_flush) spans, shared axis
//   --metrics-json=FILE  every layer's counters in one registry dump
//   --faults=SPEC  deterministic fault plan on the same fabric
//
// The bench always runs the same seed on every SchedulerKind (frontier,
// linear, and the epoch-parallel scheduler) and compares a digest of the
// full observable state (core clocks, beat ledgers, coherence stats);
// exit status 1 on divergence. Same-seed reruns are bit-identical — the
// determinism contract the golden-trace tests (tests/substrate/) pin
// down byte-for-byte.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "coherence/simulator.hpp"
#include "harness.hpp"
#include "heartbeat/delivery.hpp"
#include "hwsim/machine.hpp"
#include "workloads/coherence_driver.hpp"

using namespace iw;

namespace {

bench::Harness harness;

struct Params {
  unsigned cores{8};
  std::uint64_t steps{4'000};
  Cycles period{20'000};
  Cycles poll_cost{90};
  bool deactivate{true};
};

/// The promotion-point wrapper: poll the heartbeat at every step
/// boundary (where a compiler would have inserted the poll), then run
/// the memory-bound step. This is the interweaving in driver form.
class ComposedDriver final : public hwsim::CoreDriver {
 public:
  ComposedDriver(workloads::CoherenceDriver& work,
                 heartbeat::HeartbeatBackend& hb, Cycles poll_cost)
      : work_(work), hb_(hb), poll_cost_(poll_cost) {}

  bool runnable(hwsim::Core& core) override { return work_.runnable(core); }

  void step(hwsim::Core& core) override {
    if (hb_.poll(core.id(), core.clock())) core.consume(poll_cost_);
    work_.step(core);
  }

 private:
  workloads::CoherenceDriver& work_;
  heartbeat::HeartbeatBackend& hb_;
  Cycles poll_cost_;
};

struct RunResult {
  Cycles end_cycle{0};
  std::uint64_t accesses{0};
  std::uint64_t beats{0};
  std::uint64_t misses{0};
  std::uint64_t flushes{0};
  double avg_access_lat{0.0};
  double worst_cv{0.0};
  std::uint64_t digest{0};
};

void mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
}

void mix_double(std::uint64_t& h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  mix(h, bits);
}

RunResult run_one(const Params& p, hwsim::SchedulerKind sched,
                  const char* label) {
  hwsim::MachineConfig mc;
  mc.num_cores = p.cores;
  mc.max_advances = 2'000'000'000ULL;
  harness.apply(mc);
  // After apply(): this bench sweeps the schedulers itself, so the
  // cross-scheduler digest check stays meaningful even if a
  // --scheduler= flag is passed.
  mc.scheduler = sched;
  hwsim::Machine m(mc);
  harness.attach(m, label);

  coherence::SimConfig sc;
  sc.num_cores = p.cores;
  sc.selective_deactivation = p.deactivate;
  coherence::CoherenceSim sim(sc, m.rng_stream("coherence"));
  sim.bind_substrate(&m);

  workloads::CoherenceDriver::Config wc;
  wc.steps_per_core = p.steps;
  workloads::CoherenceDriver work(sim, p.cores, wc,
                                  m.rng_stream("workload"));

  heartbeat::NautilusHeartbeat hb(m);
  if (harness.faults_enabled()) {
    heartbeat::FaultToleranceConfig ft;
    ft.enabled = true;
    hb.set_fault_tolerance(ft);
  }

  ComposedDriver driver(work, hb, p.poll_cost);
  for (unsigned c = 0; c < p.cores; ++c) {
    m.core(c).set_driver(&driver);
  }
  hb.start(p.period, p.cores);

  // Mid-run task steal: rotate every private region one core to the
  // right at a fixed virtual time. Under deactivation the old owners'
  // incoherent lines flush — the handoff spans on the trace.
  const Cycles handoff_at = 40 * p.period;
  m.run_until(handoff_at);
  for (unsigned c = 0; c < p.cores; ++c) {
    work.handoff_private(c, (c + 1) % p.cores);
  }

  // Run the workload dry. The LAPIC keeps the machine non-quiescent
  // forever, so drive in period-sized time slices until every core
  // finished its steps (time-based slices bound the overshoot past
  // completion to one period; the DES ordering, and therefore
  // everything measured, is independent of the slice size).
  auto all_done = [&] {
    for (unsigned c = 0; c < p.cores; ++c) {
      if (work.steps_done(c) < p.steps) return false;
    }
    return true;
  };
  std::uint64_t slice_guard = 4'000'000;
  while (!all_done() && slice_guard-- != 0) {
    m.run_until(m.now() + p.period);
  }
  hb.stop();

  RunResult r;
  r.end_cycle = m.now();
  r.accesses = work.total_accesses();
  const auto& st = sim.stats();
  r.misses = st.accesses - st.private_hits;
  r.flushes = st.handoff_flushes;
  r.avg_access_lat = st.avg_latency();

  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned c = 0; c < p.cores; ++c) {
    const auto& bs = hb.state(c);
    r.beats += bs.delivered;
    r.worst_cv = std::max(r.worst_cv, hb.jitter_cv(c));
    mix(h, m.core(c).clock());
    mix(h, work.steps_done(c));
    mix(h, bs.delivered);
    mix(h, bs.last_delivery);
    mix(h, bs.duplicates_suppressed);
    mix(h, bs.interbeat.count());
    mix_double(h, bs.interbeat.mean());
  }
  mix(h, r.end_cycle);
  mix(h, st.accesses);
  mix(h, st.private_hits);
  mix(h, st.directory_lookups);
  mix(h, st.invalidations);
  mix(h, st.three_hop_transfers);
  mix(h, st.memory_fetches);
  mix(h, st.handoff_flushes);
  mix(h, st.total_latency);
  r.digest = h;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  if (!harness.parse(argc, argv)) return 2;
  Params p;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* pfx) -> const char* {
      return arg.rfind(pfx, 0) == 0 ? arg.c_str() + std::strlen(pfx)
                                    : nullptr;
    };
    if (const char* v = val("--cores=")) p.cores = std::stoul(v);
    if (const char* v = val("--steps=")) p.steps = std::stoull(v);
    if (const char* v = val("--period=")) p.period = std::stoull(v);
    if (arg == "--no-deactivate") p.deactivate = false;
  }

  std::printf("== composed stack: heartbeat + coherence on one fabric ==\n");
  std::printf("cores=%u steps/core=%llu period=%llu deactivation=%s\n\n",
              p.cores, static_cast<unsigned long long>(p.steps),
              static_cast<unsigned long long>(p.period),
              p.deactivate ? "on" : "off");
  std::printf("%-10s %12s %10s %8s %9s %8s %9s %18s\n", "scheduler",
              "end_cycle", "accesses", "beats", "misses", "flushes",
              "avg_lat", "digest");

  struct Sched {
    hwsim::SchedulerKind kind;
    const char* name;
  };
  // The heartbeat mutates worker state across cores, so the parallel
  // scheduler runs its (default) single-group shard policy here.
  constexpr int kScheds = 3;
  RunResult res[kScheds];
  const Sched scheds[kScheds] = {
      {hwsim::SchedulerKind::kFrontier, "frontier"},
      {hwsim::SchedulerKind::kLinearScan, "linear"},
      {hwsim::SchedulerKind::kParallelEpoch, "parallel"}};
  for (int s = 0; s < kScheds; ++s) {
    const std::string label = std::string("composed/") + scheds[s].name;
    res[s] = run_one(p, scheds[s].kind, label.c_str());
    std::printf("%-10s %12llu %10llu %8llu %9llu %8llu %9.1f %018llx\n",
                scheds[s].name,
                static_cast<unsigned long long>(res[s].end_cycle),
                static_cast<unsigned long long>(res[s].accesses),
                static_cast<unsigned long long>(res[s].beats),
                static_cast<unsigned long long>(res[s].misses),
                static_cast<unsigned long long>(res[s].flushes),
                res[s].avg_access_lat,
                static_cast<unsigned long long>(res[s].digest));
  }

  const bool identical = res[0].digest == res[1].digest &&
                         res[0].digest == res[2].digest;
  std::printf("\nscheduler determinism: %s\n",
              identical ? "bit-identical state digests"
                        : "DIGESTS DIVERGE (DES ordering bug)");
  if (!harness.finish()) return 1;
  return identical ? 0 : 1;
}
