#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iw::bench {

bool Harness::parse_scheduler(const char* name, hwsim::SchedulerKind* out) {
  if (std::strcmp(name, "frontier") == 0) {
    *out = hwsim::SchedulerKind::kFrontier;
  } else if (std::strcmp(name, "linear") == 0) {
    *out = hwsim::SchedulerKind::kLinearScan;
  } else if (std::strcmp(name, "parallel") == 0) {
    *out = hwsim::SchedulerKind::kParallelEpoch;
  } else if (std::strcmp(name, "auto") == 0) {
    *out = hwsim::SchedulerKind::kAuto;
  } else {
    return false;
  }
  return true;
}

bool Harness::parse_count(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

const char* Harness::scheduler_name(hwsim::SchedulerKind k) {
  switch (k) {
    case hwsim::SchedulerKind::kFrontier: return "frontier";
    case hwsim::SchedulerKind::kLinearScan: return "linear";
    case hwsim::SchedulerKind::kParallelEpoch: return "parallel";
    case hwsim::SchedulerKind::kAuto: return "auto";
  }
  return "?";
}

bool Harness::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--trace=", 8) == 0) {
      trace_path_ = a + 8;
    } else if (std::strncmp(a, "--metrics-json=", 15) == 0) {
      metrics_path_ = a + 15;
    } else if (std::strncmp(a, "--faults=", 9) == 0) {
      std::string err;
      if (!hwsim::FaultPlan::parse(a + 9, &plan_, &err)) {
        std::fprintf(stderr, "--faults: %s\n", err.c_str());
        return false;
      }
    } else if (std::strncmp(a, "--fault-seed=", 13) == 0) {
      if (!parse_count(a + 13, &fault_seed_)) {
        std::fprintf(stderr,
                     "--fault-seed: expected an unsigned integer, got '%s'\n",
                     a + 13);
        return false;
      }
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      if (!parse_count(a + 7, &seed_)) {
        std::fprintf(stderr,
                     "--seed: expected an unsigned integer, got '%s'\n",
                     a + 7);
        return false;
      }
      seed_set_ = true;
    } else if (std::strncmp(a, "--scheduler=", 12) == 0) {
      if (!parse_scheduler(a + 12, &scheduler_)) {
        std::fprintf(stderr,
                     "--scheduler: unknown value '%s' (expected frontier, "
                     "linear, parallel, or auto)\n",
                     a + 12);
        return false;
      }
      scheduler_set_ = true;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      std::uint64_t v = 0;
      if (!parse_count(a + 10, &v) || v == 0 || v > 4096) {
        std::fprintf(stderr,
                     "--threads: expected a positive integer (<= 4096), "
                     "got '%s'\n",
                     a + 10);
        return false;
      }
      threads_ = static_cast<unsigned>(v);
    } else if (std::strncmp(a, "--steal=", 8) == 0) {
      if (std::strcmp(a + 8, "on") == 0) {
        steal_ = true;
      } else if (std::strcmp(a + 8, "off") == 0) {
        steal_ = false;
      } else {
        std::fprintf(stderr, "--steal: expected on or off\n");
        return false;
      }
    } else if (std::strncmp(a, "--ff=", 5) == 0) {
      if (std::strcmp(a + 5, "on") == 0) {
        ff_ = true;
      } else if (std::strcmp(a + 5, "off") == 0) {
        ff_ = false;
      } else {
        std::fprintf(stderr, "--ff: expected on or off\n");
        return false;
      }
    } else if (std::strncmp(a, "--checkpoint-every=", 19) == 0) {
      std::uint64_t v = 0;
      if (!parse_count(a + 19, &v) || v == 0) {
        std::fprintf(stderr,
                     "--checkpoint-every: expected a positive cycle count, "
                     "got '%s' (omit the flag to disable checkpointing)\n",
                     a + 19);
        return false;
      }
      checkpoint_every_ = v;
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      std::uint64_t v = 0;
      if (!parse_count(a + 7, &v) || v == 0 || v > 1024) {
        std::fprintf(stderr,
                     "--jobs: expected a positive worker count (<= 1024), "
                     "got '%s'\n",
                     a + 7);
        return false;
      }
      jobs_ = static_cast<unsigned>(v);
      jobs_set_ = true;
    } else if (std::strcmp(a, "--trace") == 0 ||
               std::strcmp(a, "--metrics-json") == 0 ||
               std::strcmp(a, "--faults") == 0 ||
               std::strcmp(a, "--fault-seed") == 0 ||
               std::strcmp(a, "--seed") == 0 ||
               std::strcmp(a, "--scheduler") == 0 ||
               std::strcmp(a, "--threads") == 0 ||
               std::strcmp(a, "--steal") == 0 ||
               std::strcmp(a, "--ff") == 0 ||
               std::strcmp(a, "--checkpoint-every") == 0 ||
               std::strcmp(a, "--jobs") == 0) {
      std::fprintf(stderr, "%s needs a value (%s=...)\n", a, a);
      return false;
    }
  }
  if (plan_.enabled) {
    analytic_faults_.configure(plan_, seed_, fault_seed_);
  }
  return true;
}

void Harness::begin_run(const std::string& label) {
  if (!trace_path_.empty()) tracer_.begin_process(label);
}

void Harness::attach(hwsim::Machine& m, const std::string& label) {
  begin_run(label);
  m.set_tracer(tracer());
  m.set_metrics(metrics());
}

void Harness::attach(substrate::AnalyticSubstrate& sub,
                     const std::string& label) {
  begin_run(label);
  sub.set_tracer(tracer());
  sub.set_metrics(metrics());
  if (plan_.enabled) sub.set_fault_injector(&analytic_faults_);
}

void Harness::apply(hwsim::MachineConfig& mc) const {
  mc.faults = plan_;
  mc.fault_seed = fault_seed_;
  if (seed_set_) mc.seed = seed_;
  // Only override what the flags actually set: benches that sweep
  // schedulers themselves assign mc.scheduler before/after apply().
  if (scheduler_set_) mc.scheduler = scheduler_;
  mc.threads = threads_;
  mc.work_stealing = steal_;
  mc.fast_forward.enabled = ff_;
}

bool Harness::finish() {
  bool ok = true;
  if (!trace_path_.empty()) {
    if (tracer_.save_chrome_json(trace_path_)) {
      std::printf("trace: %llu events -> %s\n",
                  static_cast<unsigned long long>(tracer_.total_events()),
                  trace_path_.c_str());
    } else {
      std::fprintf(stderr, "trace: cannot write %s\n", trace_path_.c_str());
      ok = false;
    }
  }
  if (!metrics_path_.empty()) {
    if (metrics_.save_json(metrics_path_)) {
      std::printf("metrics: %s\n", metrics_path_.c_str());
    } else {
      std::fprintf(stderr, "metrics: cannot write %s\n",
                   metrics_path_.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace iw::bench
