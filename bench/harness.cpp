#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iw::bench {

bool Harness::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--trace=", 8) == 0) {
      trace_path_ = a + 8;
    } else if (std::strncmp(a, "--metrics-json=", 15) == 0) {
      metrics_path_ = a + 15;
    } else if (std::strncmp(a, "--faults=", 9) == 0) {
      std::string err;
      if (!hwsim::FaultPlan::parse(a + 9, &plan_, &err)) {
        std::fprintf(stderr, "--faults: %s\n", err.c_str());
        return false;
      }
    } else if (std::strncmp(a, "--fault-seed=", 13) == 0) {
      fault_seed_ = std::strtoull(a + 13, nullptr, 10);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      seed_ = std::strtoull(a + 7, nullptr, 10);
      seed_set_ = true;
    } else if (std::strcmp(a, "--trace") == 0 ||
               std::strcmp(a, "--metrics-json") == 0 ||
               std::strcmp(a, "--faults") == 0 ||
               std::strcmp(a, "--fault-seed") == 0 ||
               std::strcmp(a, "--seed") == 0) {
      std::fprintf(stderr, "%s needs a value (%s=...)\n", a, a);
      return false;
    }
  }
  if (plan_.enabled) {
    analytic_faults_.configure(plan_, seed_, fault_seed_);
  }
  return true;
}

void Harness::begin_run(const std::string& label) {
  if (!trace_path_.empty()) tracer_.begin_process(label);
}

void Harness::attach(hwsim::Machine& m, const std::string& label) {
  begin_run(label);
  m.set_tracer(tracer());
  m.set_metrics(metrics());
}

void Harness::attach(substrate::AnalyticSubstrate& sub,
                     const std::string& label) {
  begin_run(label);
  sub.set_tracer(tracer());
  sub.set_metrics(metrics());
  if (plan_.enabled) sub.set_fault_injector(&analytic_faults_);
}

void Harness::apply(hwsim::MachineConfig& mc) const {
  mc.faults = plan_;
  mc.fault_seed = fault_seed_;
  if (seed_set_) mc.seed = seed_;
}

bool Harness::finish() {
  bool ok = true;
  if (!trace_path_.empty()) {
    if (tracer_.save_chrome_json(trace_path_)) {
      std::printf("trace: %llu events -> %s\n",
                  static_cast<unsigned long long>(tracer_.total_events()),
                  trace_path_.c_str());
    } else {
      std::fprintf(stderr, "trace: cannot write %s\n", trace_path_.c_str());
      ok = false;
    }
  }
  if (!metrics_path_.empty()) {
    if (metrics_.save_json(metrics_path_)) {
      std::printf("metrics: %s\n", metrics_path_.c_str());
    } else {
      std::fprintf(stderr, "metrics: cannot write %s\n",
                   metrics_path_.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace iw::bench
