// §V-B consistency table: selective fence relaxation. The paper: "A
// fence orders writes that produce data before setting the done flag,
// but it also orders all other writes the thread issued, even if they
// are unrelated to the intended use of the fence." With language-level
// knowledge of which stores the release actually publishes, the fence
// waits only for those.
#include <cstdio>

#include "coherence/consistency.hpp"
#include "harness.hpp"

using namespace iw;
using namespace iw::coherence;

int main(int argc, char** argv) {
  bench::Harness harness;
  if (!harness.parse(argc, argv)) return 2;
  std::printf("== selective fence relaxation (store-buffer model) ==\n");
  std::printf("(producer: tagged data stores + untagged bookkeeping burst, "
              "then publish)\n\n");
  std::printf("%6s %10s %16s %16s %10s\n", "data", "unrelated",
              "TSO_stall/round", "selective/round", "saved");
  for (unsigned data : {2u, 4u, 8u}) {
    for (unsigned unrelated : {0u, 8u, 24u, 48u}) {
      const auto r = run_fence_experiment(data, unrelated, 400);
      const double saved =
          r.full_fence_stall > 0
              ? 100.0 * (1.0 - r.selective_stall / r.full_fence_stall)
              : 0.0;
      std::printf("%6u %10u %16.1f %16.1f %9.1f%%\n", data, unrelated,
                  r.full_fence_stall, r.selective_stall, saved);
    }
  }
  std::printf(
      "\nshape: the TSO publication stall grows with unrelated traffic;\n"
      "the selective release's does not — ordering only what the\n"
      "language says needs ordering removes the stall almost entirely.\n");
  return harness.finish() ? 0 : 1;
}
