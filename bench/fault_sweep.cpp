// Fault sweep: heartbeat beat-gap inflation vs injected IPI loss.
//
// Sweeps FaultPlan drop-rate x extra-delay over the Nautilus heartbeat
// (16 cores, fig3 pattern: LAPIC on CPU 0, IPI fan-out, busy workers)
// with the fault-tolerance supervisor enabled, and reports the beat-gap
// distribution (p50/p99/mean, from the heartbeat.beat_gap histogram)
// plus the recovery machinery's counters. The headline acceptance
// number: at 10% IPI drop the backend degrades to software-polled
// delivery and keeps p99 beat gap under 3x the fault-free p99.
//
// The main sweep runs with ReliableIpi retries OFF so persistent loss
// actually reaches the degradation logic; a second set of rows turns
// retries on to show the layered defense (retries absorb isolated
// drops so degradation never becomes necessary).
//
// Usage: fault_sweep [--smoke] [--out=FILE]
//   --smoke     ~10x shorter runs (CI artifact mode)
//   --out=FILE  JSON output path (default BENCH_fault_sweep.json)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "des_workload.hpp"
#include "heartbeat/delivery.hpp"
#include "obs/metrics.hpp"

using namespace iw;

namespace {

constexpr unsigned kCores = 16;
constexpr int kVector = 0x40;

struct Row {
  const char* mode{"sweep"};  // "sweep" (retry off) or "retry" (on)
  double drop{0.0};
  double delay_rate{0.0};
  Cycles delay_max{0};
  std::uint64_t gaps{0};
  std::uint64_t p50{0};
  std::uint64_t p99{0};
  double mean{0.0};
  std::uint64_t ipis_dropped{0};
  std::uint64_t retries{0};
  std::uint64_t missed{0};
  std::uint64_t polled{0};
  std::uint64_t degraded_entries{0};
  std::uint64_t recoveries{0};
  bool degraded_final{false};
};

Row run_one(double drop, double delay_rate, Cycles delay_max, bool retry,
            std::uint64_t rounds) {
  hwsim::MachineConfig mc;
  mc.num_cores = kCores;
  mc.costs = hwsim::CostModel::knl();
  mc.max_advances = 2'000'000'000ULL;
  mc.faults.enabled = drop > 0.0 || delay_rate > 0.0;
  mc.faults.ipi_drop_rate = drop;
  mc.faults.ipi_delay_rate = delay_rate;
  mc.faults.ipi_delay_max = delay_max;
  hwsim::Machine m(mc);

  // Fresh registry per configuration: the beat_gap histogram must only
  // see this run's gaps.
  obs::MetricsRegistry mx;
  m.set_metrics(&mx);

  bench::SpinForeverDriver driver(200);
  for (unsigned c = 0; c < kCores; ++c) m.core(c).set_driver(&driver);

  const Cycles period = mc.costs.freq.us_to_cycles(20.0);
  heartbeat::NautilusHeartbeat hb(m, kVector);
  heartbeat::FaultToleranceConfig ft;
  ft.enabled = true;
  ft.ipi_retry = retry;
  // One extra clean round before recovering: at 10% drop a 3-round clean
  // streak still happens by chance every few hundred rounds, and each
  // spurious recovery costs a few lossy interrupt-driven rounds.
  ft.recover_after = 4;
  hb.set_fault_tolerance(ft);
  hb.start(period, kCores);

  if (!m.run_until(rounds * period)) {
    std::fprintf(stderr, "fault_sweep: machine watchdog fired\n");
    std::exit(1);
  }
  hb.stop();

  Row r;
  r.mode = retry ? "retry" : "sweep";
  r.drop = drop;
  r.delay_rate = delay_rate;
  r.delay_max = delay_max;
  const auto& h = mx.histogram(obs::names::kHeartbeatBeatGap);
  r.gaps = h.count();
  r.p50 = h.value_at_percentile(50.0);
  r.p99 = h.value_at_percentile(99.0);
  r.mean = h.mean();
  r.ipis_dropped = mx.counter(obs::names::kFaultsIpiDropped);
  r.retries = mx.counter(obs::names::kFaultsIpiRetries);
  r.missed = hb.missed_beats();
  r.polled = hb.polled_beats();
  r.degraded_entries = hb.degraded_entries();
  r.recoveries = hb.recoveries();
  r.degraded_final = hb.degraded();
  return r;
}

void print_row(const Row& r, double baseline_p99) {
  const double infl =
      baseline_p99 > 0.0 ? static_cast<double>(r.p99) / baseline_p99 : 0.0;
  std::printf(
      "%-6s %5.2f %5.2f %7llu %8llu %8llu %8llu %6.2fx %7llu %7llu %5llu "
      "%4llu %4llu %s\n",
      r.mode, r.drop, r.delay_rate,
      static_cast<unsigned long long>(r.delay_max),
      static_cast<unsigned long long>(r.gaps),
      static_cast<unsigned long long>(r.p50),
      static_cast<unsigned long long>(r.p99), infl,
      static_cast<unsigned long long>(r.ipis_dropped),
      static_cast<unsigned long long>(r.polled),
      static_cast<unsigned long long>(r.missed),
      static_cast<unsigned long long>(r.degraded_entries),
      static_cast<unsigned long long>(r.recoveries),
      r.degraded_final ? "degraded" : "ipi");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_fault_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }
  const std::uint64_t rounds = smoke ? 300 : 3'000;

  const std::vector<double> drops{0.0, 0.01, 0.05, 0.10, 0.20};
  const std::vector<Cycles> delays{0, 7'000, 14'000};

  std::printf("== fault_sweep: beat-gap vs IPI loss (16 cores, %llu "
              "rounds, 20us period) ==\n",
              static_cast<unsigned long long>(rounds));
  std::printf("%-6s %5s %5s %7s %8s %8s %8s %7s %7s %7s %5s %4s %4s %s\n",
              "mode", "drop", "dly_p", "dly_max", "gaps", "p50", "p99",
              "infl", "dropped", "polled", "miss", "deg", "rec", "final");

  std::vector<Row> rows;
  double baseline_p99 = 0.0;
  for (const Cycles delay_max : delays) {
    const double delay_rate = delay_max > 0 ? 0.25 : 0.0;
    for (const double drop : drops) {
      Row r = run_one(drop, delay_rate, delay_max, /*retry=*/false, rounds);
      if (drop == 0.0 && delay_max == 0) {
        baseline_p99 = static_cast<double>(r.p99);
      }
      print_row(r, baseline_p99);
      rows.push_back(r);
    }
  }
  // Layered defense: same loss rates with bounded-backoff retries on.
  for (const double drop : {0.01, 0.10}) {
    Row r = run_one(drop, 0.0, 0, /*retry=*/true, rounds);
    print_row(r, baseline_p99);
    rows.push_back(r);
  }

  // Acceptance: 10% drop (no delay, retry off) must have degraded and
  // kept p99 under 3x the fault-free p99.
  const Row* ten = nullptr;
  for (const Row& r : rows) {
    if (std::strcmp(r.mode, "sweep") == 0 && r.drop == 0.10 &&
        r.delay_max == 0) {
      ten = &r;
    }
  }
  if (ten == nullptr || baseline_p99 <= 0.0) {
    std::fprintf(stderr, "fault_sweep: missing acceptance rows\n");
    return 1;
  }
  const double infl10 = static_cast<double>(ten->p99) / baseline_p99;
  const bool accept =
      ten->degraded_entries >= 1 && ten->polled > 0 && infl10 < 3.0;
  std::printf("\nacceptance: 10%% drop -> degraded=%llu polled=%llu "
              "p99_inflation=%.2fx (< 3x required): %s\n",
              static_cast<unsigned long long>(ten->degraded_entries),
              static_cast<unsigned long long>(ten->polled), infl10,
              accept ? "PASS" : "FAIL");

  std::FILE* fp = std::fopen(out.c_str(), "w");
  if (fp == nullptr) {
    std::fprintf(stderr, "fault_sweep: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(fp,
               "{\n  \"bench\": \"fault_sweep\",\n"
               "  \"workload\": \"nautilus heartbeat, 16 cores, 20us "
               "period, busy 200-cycle spin steps; FaultPlan drop x "
               "delay on the IPI fabric\",\n"
               "  \"smoke\": %s,\n  \"rounds\": %llu,\n"
               "  \"baseline_p99_cycles\": %.0f,\n  \"results\": [\n",
               smoke ? "true" : "false",
               static_cast<unsigned long long>(rounds), baseline_p99);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double infl = baseline_p99 > 0.0
                            ? static_cast<double>(r.p99) / baseline_p99
                            : 0.0;
    std::fprintf(
        fp,
        "    {\"mode\": \"%s\", \"drop\": %.2f, \"delay_rate\": %.2f, "
        "\"delay_max\": %llu, \"gaps\": %llu, \"p50\": %llu, \"p99\": "
        "%llu, \"mean\": %.1f, \"p99_inflation\": %.3f, \"ipis_dropped\": "
        "%llu, \"ipi_retries\": %llu, \"missed_beats\": %llu, "
        "\"polled_beats\": %llu, \"degraded_entries\": %llu, "
        "\"recoveries\": %llu, \"degraded_final\": %s}%s\n",
        r.mode, r.drop, r.delay_rate,
        static_cast<unsigned long long>(r.delay_max),
        static_cast<unsigned long long>(r.gaps),
        static_cast<unsigned long long>(r.p50),
        static_cast<unsigned long long>(r.p99), r.mean, infl,
        static_cast<unsigned long long>(r.ipis_dropped),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.missed),
        static_cast<unsigned long long>(r.polled),
        static_cast<unsigned long long>(r.degraded_entries),
        static_cast<unsigned long long>(r.recoveries),
        r.degraded_final ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(fp,
               "  ],\n  \"acceptance\": {\"drop10_p99_inflation\": %.3f, "
               "\"drop10_degraded\": %s, \"pass\": %s}\n}\n",
               infl10, ten->degraded_entries >= 1 ? "true" : "false",
               accept ? "true" : "false");
  std::fclose(fp);
  std::printf("wrote %s\n", out.c_str());
  return accept ? 0 : 1;
}
