// Fault sweep: heartbeat beat-gap inflation vs injected IPI loss.
//
// Sweeps FaultPlan drop-rate x extra-delay over the Nautilus heartbeat
// (16 cores, fig3 pattern: LAPIC on CPU 0, IPI fan-out, busy workers)
// with the fault-tolerance supervisor enabled, and reports the beat-gap
// distribution (p50/p99/mean, from the heartbeat.beat_gap histogram)
// plus the recovery machinery's counters. The headline acceptance
// number: at 10% IPI drop the backend degrades to software-polled
// delivery and keeps p99 beat gap under 3x the fault-free p99.
//
// The main sweep runs with ReliableIpi retries OFF so persistent loss
// actually reaches the degradation logic; a second set of rows turns
// retries on to show the layered defense (retries absorb isolated
// drops so degradation never becomes necessary).
//
// The sweep has two tiers. The classic tier (15 rows) keeps the
// histogram-grade acceptance: full beat-gap distributions per (drop,
// delay) cell with the recovery counters. The matrix tier is the first
// scenario-server customer: drop x delay x dup x seed (1080 cells)
// over the heartbeat replay workload, every cell hydrated from ONE
// warmed snapshot-v2 image and diverging only through its installed
// fault plan. The matrix runs twice — one worker, then a pool — and
// the results must be byte-identical (digests_worker_count_invariant);
// pool throughput lands in the JSON as scenarios_per_sec with the
// host-speed-cancelling ratio speedup_workers_vs_1 for the CI guard
// (check_des_regression.py --profile=scenarios).
//
// Usage: fault_sweep [--smoke] [--jobs=N] [--out=FILE]
//   --smoke     ~10x shorter runs (CI artifact mode)
//   --jobs=N    worker pool size for the scenario matrix (default:
//               min(4, hardware threads); the 1-worker reference pass
//               always runs for the invariance check)
//   --out=FILE  JSON output path (default BENCH_fault_sweep.json)
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "des_workload.hpp"
#include "harness.hpp"
#include "heartbeat/delivery.hpp"
#include "hwsim/snapshot.hpp"
#include "obs/metrics.hpp"
#include "scenarioserver/server.hpp"

#include "../tools/replay_workload.hpp"

using namespace iw;

namespace {

constexpr unsigned kCores = 16;
constexpr int kVector = 0x40;

struct Row {
  const char* mode{"sweep"};  // "sweep" (retry off) or "retry" (on)
  double drop{0.0};
  double delay_rate{0.0};
  Cycles delay_max{0};
  std::uint64_t gaps{0};
  std::uint64_t p50{0};
  std::uint64_t p99{0};
  double mean{0.0};
  std::uint64_t ipis_dropped{0};
  std::uint64_t retries{0};
  std::uint64_t missed{0};
  std::uint64_t polled{0};
  std::uint64_t degraded_entries{0};
  std::uint64_t recoveries{0};
  bool degraded_final{false};
};

Row run_one(double drop, double delay_rate, Cycles delay_max, bool retry,
            std::uint64_t rounds) {
  hwsim::MachineConfig mc;
  mc.num_cores = kCores;
  mc.costs = hwsim::CostModel::knl();
  mc.max_advances = 2'000'000'000ULL;
  mc.faults.enabled = drop > 0.0 || delay_rate > 0.0;
  mc.faults.ipi_drop_rate = drop;
  mc.faults.ipi_delay_rate = delay_rate;
  mc.faults.ipi_delay_max = delay_max;
  hwsim::Machine m(mc);

  // Fresh registry per configuration: the beat_gap histogram must only
  // see this run's gaps.
  obs::MetricsRegistry mx;
  m.set_metrics(&mx);

  bench::SpinForeverDriver driver(200);
  for (unsigned c = 0; c < kCores; ++c) m.core(c).set_driver(&driver);

  const Cycles period = mc.costs.freq.us_to_cycles(20.0);
  heartbeat::NautilusHeartbeat hb(m, kVector);
  heartbeat::FaultToleranceConfig ft;
  ft.enabled = true;
  ft.ipi_retry = retry;
  // One extra clean round before recovering: at 10% drop a 3-round clean
  // streak still happens by chance every few hundred rounds, and each
  // spurious recovery costs a few lossy interrupt-driven rounds.
  ft.recover_after = 4;
  hb.set_fault_tolerance(ft);
  hb.start(period, kCores);

  if (!m.run_until(rounds * period)) {
    std::fprintf(stderr, "fault_sweep: machine watchdog fired\n");
    std::exit(1);
  }
  hb.stop();

  Row r;
  r.mode = retry ? "retry" : "sweep";
  r.drop = drop;
  r.delay_rate = delay_rate;
  r.delay_max = delay_max;
  const auto& h = mx.histogram(obs::names::kHeartbeatBeatGap);
  r.gaps = h.count();
  r.p50 = h.value_at_percentile(50.0);
  r.p99 = h.value_at_percentile(99.0);
  r.mean = h.mean();
  r.ipis_dropped = mx.counter(obs::names::kFaultsIpiDropped);
  r.retries = mx.counter(obs::names::kFaultsIpiRetries);
  r.missed = hb.missed_beats();
  r.polled = hb.polled_beats();
  r.degraded_entries = hb.degraded_entries();
  r.recoveries = hb.recoveries();
  r.degraded_final = hb.degraded();
  return r;
}

void print_row(const Row& r, double baseline_p99) {
  const double infl =
      baseline_p99 > 0.0 ? static_cast<double>(r.p99) / baseline_p99 : 0.0;
  std::printf(
      "%-6s %5.2f %5.2f %7llu %8llu %8llu %8llu %6.2fx %7llu %7llu %5llu "
      "%4llu %4llu %s\n",
      r.mode, r.drop, r.delay_rate,
      static_cast<unsigned long long>(r.delay_max),
      static_cast<unsigned long long>(r.gaps),
      static_cast<unsigned long long>(r.p50),
      static_cast<unsigned long long>(r.p99), infl,
      static_cast<unsigned long long>(r.ipis_dropped),
      static_cast<unsigned long long>(r.polled),
      static_cast<unsigned long long>(r.missed),
      static_cast<unsigned long long>(r.degraded_entries),
      static_cast<unsigned long long>(r.recoveries),
      r.degraded_final ? "degraded" : "ipi");
}

// --- scenario-server matrix tier -----------------------------------------

class MatrixHarness final : public scenarioserver::ScenarioHarness {
 public:
  MatrixHarness(hwsim::Machine& m, Cycles period)
      : workload_(m, period, /*fault_tolerant=*/true) {}
  void collect(std::vector<std::pair<std::string, double>>& out) override {
    out.emplace_back("max_gap_periods", workload_.max_gap_periods());
    out.emplace_back(
        "polled_beats",
        static_cast<double>(workload_.heartbeat().polled_beats()));
  }

 private:
  tools::ReplayWorkload workload_;
};

struct MatrixOutcome {
  std::size_t cells{0};
  unsigned workers{0};
  double serial_rate{0.0};
  double pooled_rate{0.0};
  bool invariant{false};
  std::size_t distinct_digests{0};
};

MatrixOutcome run_matrix(bool smoke, unsigned jobs) {
  // Small machine, short divergent window: the point of this tier is
  // cell COUNT (1080 fault environments), not per-cell depth — the
  // histogram-grade depth lives in the classic tier above.
  scenarioserver::ScenarioBatch batch;
  batch.base.num_cores = 4;
  batch.base.seed = 42;
  batch.base.max_advances = 4'000'000'000ULL;
  const Cycles period = batch.base.costs.freq.us_to_cycles(20.0);
  const Cycles warm = 20 * period;
  const Cycles horizon = warm + (smoke ? 30 : 60) * period;
  {
    hwsim::Machine donor(batch.base);
    tools::ReplayWorkload w(donor, period, /*fault_tolerant=*/true);
    if (!donor.run_until(warm)) {
      std::fprintf(stderr, "fault_sweep: matrix donor hit a limit\n");
      std::exit(1);
    }
    batch.image = donor.snapshot().serialize();
  }
  batch.factory = [period](hwsim::Machine& m) {
    return std::make_unique<MatrixHarness>(m, period);
  };

  const double drops[] = {0.0, 0.01, 0.05, 0.10, 0.20};
  const Cycles delays[] = {0, 7'000, 14'000};
  const double dups[] = {0.0, 0.05, 0.10};
  constexpr std::uint64_t kSeeds = 24;

  std::vector<scenarioserver::ScenarioSpec> specs;
  std::uint64_t id = 0;
  for (const double drop : drops) {
    for (const Cycles delay_max : delays) {
      for (const double dup : dups) {
        for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
          scenarioserver::ScenarioSpec s;
          s.id = id;
          s.group = id;  // one strategy per cell: every cell its own class
          ++id;
          char label[96];
          std::snprintf(label, sizeof label, "drop%g/dly%llu/dup%g/s%llu",
                        drop, static_cast<unsigned long long>(delay_max),
                        dup, static_cast<unsigned long long>(seed));
          s.label = label;
          s.plan.enabled = drop > 0.0 || delay_max > 0 || dup > 0.0;
          s.plan.ipi_drop_rate = drop;
          s.plan.ipi_delay_rate = delay_max > 0 ? 0.25 : 0.0;
          s.plan.ipi_delay_max = delay_max;
          s.plan.ipi_dup_rate = dup;
          s.fault_seed = 0xBEEF + seed;
          s.horizon = horizon;
          specs.push_back(std::move(s));
        }
      }
    }
  }

  MatrixOutcome mo;
  mo.cells = specs.size();
  if (jobs != 0) {
    mo.workers = jobs;
  } else {
    const unsigned hw = std::thread::hardware_concurrency();
    mo.workers = hw >= 4 ? 4 : (hw >= 2 ? hw : 2);
  }

  scenarioserver::ScenarioServer serial(
      scenarioserver::ScenarioServerConfig{1});
  scenarioserver::ScenarioServer pooled(
      scenarioserver::ScenarioServerConfig{mo.workers});
  std::vector<scenarioserver::ScenarioSpec> specs2 = specs;
  scenarioserver::ResultsStore rs1 = serial.run(batch, std::move(specs));
  scenarioserver::ResultsStore rs2 = pooled.run(batch, std::move(specs2));
  mo.serial_rate = serial.scenarios_per_sec();
  mo.pooled_rate = pooled.scenarios_per_sec();

  std::ostringstream o1, o2;
  rs1.write_jsonl(o1);
  rs2.write_jsonl(o2);
  mo.invariant = o1.str() == o2.str();

  std::set<std::uint64_t> digests;
  for (const auto& e : rs2.entries()) digests.insert(e.digest);
  mo.distinct_digests = digests.size();
  return mo;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  unsigned jobs = 0;
  std::string out = "BENCH_fault_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      std::uint64_t v = 0;
      if (!bench::Harness::parse_count(argv[i] + 7, &v) || v == 0 ||
          v > 1024) {
        std::fprintf(stderr,
                     "--jobs: expected a positive worker count (<= 1024), "
                     "got '%s'\n",
                     argv[i] + 7);
        return 2;
      }
      jobs = static_cast<unsigned>(v);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--jobs=N] [--out=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  const std::uint64_t rounds = smoke ? 300 : 3'000;

  const std::vector<double> drops{0.0, 0.01, 0.05, 0.10, 0.20};
  const std::vector<Cycles> delays{0, 7'000, 14'000};

  std::printf("== fault_sweep: beat-gap vs IPI loss (16 cores, %llu "
              "rounds, 20us period) ==\n",
              static_cast<unsigned long long>(rounds));
  std::printf("%-6s %5s %5s %7s %8s %8s %8s %7s %7s %7s %5s %4s %4s %s\n",
              "mode", "drop", "dly_p", "dly_max", "gaps", "p50", "p99",
              "infl", "dropped", "polled", "miss", "deg", "rec", "final");

  std::vector<Row> rows;
  double baseline_p99 = 0.0;
  for (const Cycles delay_max : delays) {
    const double delay_rate = delay_max > 0 ? 0.25 : 0.0;
    for (const double drop : drops) {
      Row r = run_one(drop, delay_rate, delay_max, /*retry=*/false, rounds);
      if (drop == 0.0 && delay_max == 0) {
        baseline_p99 = static_cast<double>(r.p99);
      }
      print_row(r, baseline_p99);
      rows.push_back(r);
    }
  }
  // Layered defense: same loss rates with bounded-backoff retries on.
  for (const double drop : {0.01, 0.10}) {
    Row r = run_one(drop, 0.0, 0, /*retry=*/true, rounds);
    print_row(r, baseline_p99);
    rows.push_back(r);
  }

  // Acceptance: 10% drop (no delay, retry off) must have degraded and
  // kept p99 under 3x the fault-free p99.
  const Row* ten = nullptr;
  for (const Row& r : rows) {
    if (std::strcmp(r.mode, "sweep") == 0 && r.drop == 0.10 &&
        r.delay_max == 0) {
      ten = &r;
    }
  }
  if (ten == nullptr || baseline_p99 <= 0.0) {
    std::fprintf(stderr, "fault_sweep: missing acceptance rows\n");
    return 1;
  }
  const double infl10 = static_cast<double>(ten->p99) / baseline_p99;
  const bool accept =
      ten->degraded_entries >= 1 && ten->polled > 0 && infl10 < 3.0;

  const MatrixOutcome mo = run_matrix(smoke, jobs);
  const double workers_vs_1 =
      mo.serial_rate > 0.0 ? mo.pooled_rate / mo.serial_rate : 0.0;
  std::printf("\nscenario matrix: %zu cells (drop x delay x dup x seed), "
              "%u workers\n",
              mo.cells, mo.workers);
  std::printf("  scenarios_per_sec: %.1f (1 worker: %.1f, x%.2f)\n",
              mo.pooled_rate, mo.serial_rate, workers_vs_1);
  std::printf("  worker-count invariant: %s; %zu distinct digests\n",
              mo.invariant ? "yes" : "NO",
              mo.distinct_digests);
  std::printf("\nacceptance: 10%% drop -> degraded=%llu polled=%llu "
              "p99_inflation=%.2fx (< 3x required): %s\n",
              static_cast<unsigned long long>(ten->degraded_entries),
              static_cast<unsigned long long>(ten->polled), infl10,
              accept ? "PASS" : "FAIL");

  std::FILE* fp = std::fopen(out.c_str(), "w");
  if (fp == nullptr) {
    std::fprintf(stderr, "fault_sweep: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(fp,
               "{\n  \"bench\": \"fault_sweep\",\n"
               "  \"workload\": \"nautilus heartbeat, 16 cores, 20us "
               "period, busy 200-cycle spin steps; FaultPlan drop x "
               "delay on the IPI fabric\",\n"
               "  \"smoke\": %s,\n  \"rounds\": %llu,\n"
               "  \"host_cpus\": %u,\n"
               "  \"scenarios_cells\": %zu,\n"
               "  \"scenarios_workers\": %u,\n"
               "  \"scenarios_per_sec\": %.1f,\n"
               "  \"speedup_workers_vs_1\": {\"%u\": %.3f},\n"
               "  \"digests_worker_count_invariant\": %s,\n"
               "  \"scenario_distinct_digests\": %zu,\n"
               "  \"baseline_p99_cycles\": %.0f,\n  \"results\": [\n",
               smoke ? "true" : "false",
               static_cast<unsigned long long>(rounds),
               std::thread::hardware_concurrency(), mo.cells, mo.workers,
               mo.pooled_rate, mo.workers, workers_vs_1,
               mo.invariant ? "true" : "false", mo.distinct_digests,
               baseline_p99);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double infl = baseline_p99 > 0.0
                            ? static_cast<double>(r.p99) / baseline_p99
                            : 0.0;
    std::fprintf(
        fp,
        "    {\"mode\": \"%s\", \"drop\": %.2f, \"delay_rate\": %.2f, "
        "\"delay_max\": %llu, \"gaps\": %llu, \"p50\": %llu, \"p99\": "
        "%llu, \"mean\": %.1f, \"p99_inflation\": %.3f, \"ipis_dropped\": "
        "%llu, \"ipi_retries\": %llu, \"missed_beats\": %llu, "
        "\"polled_beats\": %llu, \"degraded_entries\": %llu, "
        "\"recoveries\": %llu, \"degraded_final\": %s}%s\n",
        r.mode, r.drop, r.delay_rate,
        static_cast<unsigned long long>(r.delay_max),
        static_cast<unsigned long long>(r.gaps),
        static_cast<unsigned long long>(r.p50),
        static_cast<unsigned long long>(r.p99), r.mean, infl,
        static_cast<unsigned long long>(r.ipis_dropped),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.missed),
        static_cast<unsigned long long>(r.polled),
        static_cast<unsigned long long>(r.degraded_entries),
        static_cast<unsigned long long>(r.recoveries),
        r.degraded_final ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(fp,
               "  ],\n  \"acceptance\": {\"drop10_p99_inflation\": %.3f, "
               "\"drop10_degraded\": %s, \"pass\": %s}\n}\n",
               infl10, ten->degraded_entries >= 1 ? "true" : "false",
               accept ? "true" : "false");
  std::fclose(fp);
  std::printf("wrote %s\n", out.c_str());
  return accept && mo.invariant ? 0 : 1;
}
