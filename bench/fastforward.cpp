// Wall-clock win of selectable-fidelity fast-forward on long-horizon
// runs: the fig3 heartbeat workload stretched to benchmark geometry
// (50-cycle spin steps, 100k-cycle beat period — ~2000 inert steps per
// core between consecutive interrupt boundaries), run with skip-ahead
// off and on at 16/64 simulated cores under frontier, linear, and
// parallel scheduling.
//
// Fast-forward is a pure wall-clock knob: both modes of every cell must
// produce the same advances/irqs/end-state digest (asserted here, and
// bit-for-bit over full traces in tests/hwsim/fast_forward_test.cpp —
// this binary re-checks trace equality on a shorter traced run so the
// committed JSON never vouches for digests nobody compared). The JSON
// records per-cell wall times, the skip share (fraction of advances
// replayed analytically), and a `speedup_ff_vs_full` ratio map guarded
// by tools/check_des_regression.py --profile=fastforward.
//
// Usage: fastforward [--smoke] [--out=FILE] [--threads=N]
//   --smoke      ~10x shorter runs (CI artifact mode)
//   --out=FILE   JSON output path (default BENCH_fastforward.json)
//   --threads=N  host worker threads for the parallel series (default 1)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "des_workload.hpp"
#include "harness.hpp"
#include "obs/trace.hpp"

using namespace iw;

namespace {

constexpr Cycles kStep = 50;
constexpr Cycles kPeriod = 100'000;

struct Row {
  unsigned cores{0};
  const char* scheduler{""};
  bool ff{false};
  std::uint64_t advances{0};
  std::uint64_t irqs{0};
  std::uint64_t ff_steps{0};
  Cycles ff_cycles{0};
  std::uint64_t ff_windows{0};
  Cycles sim_time{0};
  double wall_ms{0.0};
  double events_per_sec{0.0};
};

const char* sched_label(hwsim::SchedulerKind sched) {
  switch (sched) {
    case hwsim::SchedulerKind::kFrontier: return "frontier";
    case hwsim::SchedulerKind::kLinearScan: return "linear";
    case hwsim::SchedulerKind::kParallelEpoch: return "parallel";
    case hwsim::SchedulerKind::kAuto: return "auto";
  }
  return "?";
}

/// Best-of-`repeats` (fresh workload each repeat, minimum wall time
/// wins; the simulated results must be identical across repeats).
Row run_one(unsigned cores, hwsim::SchedulerKind sched, bool ff,
            Cycles sim_cycles, unsigned threads, int repeats) {
  Row r;
  r.cores = cores;
  r.scheduler = sched_label(sched);
  r.ff = ff;
  for (int rep = 0; rep < repeats; ++rep) {
    bench::DesWorkload w =
        bench::make_des_workload(cores, sched, kStep, kPeriod, threads);
    hwsim::FastForwardPolicy pol;
    pol.enabled = ff;
    w.machine->set_fast_forward(pol);
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = w.machine->run_until(sim_cycles);
    const auto t1 = std::chrono::steady_clock::now();
    if (!ok) {
      std::fprintf(stderr, "fastforward: watchdog fired unexpectedly\n");
      std::exit(1);
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0) {
      r.advances = w.machine->total_advances();
      r.irqs = w.total_irqs();
      r.sim_time = w.machine->now();
      r.ff_steps = w.machine->fast_forwarded_steps();
      r.ff_cycles = w.machine->fast_forwarded_cycles();
      r.ff_windows = w.machine->fast_forward_windows();
      r.wall_ms = wall_ms;
    } else {
      if (r.advances != w.machine->total_advances() ||
          r.irqs != w.total_irqs() || r.sim_time != w.machine->now() ||
          r.ff_steps != w.machine->fast_forwarded_steps()) {
        std::fprintf(stderr, "fastforward: repeat diverged (%s, %u cores)\n",
                     r.scheduler, cores);
        std::exit(1);
      }
      r.wall_ms = std::min(r.wall_ms, wall_ms);
    }
  }
  r.events_per_sec =
      r.wall_ms > 0.0 ? 1000.0 * static_cast<double>(r.advances) / r.wall_ms
                      : 0.0;
  return r;
}

std::uint64_t trace_hash(const obs::TraceRecorder& tr) {
  std::ostringstream os;
  tr.write_text(os);
  const std::string s = os.str();
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Traced equivalence check at a shorter horizon: the committed speedup
/// numbers travel with a digest comparison made by the same binary.
bool traces_identical(unsigned cores, hwsim::SchedulerKind sched,
                      Cycles sim_cycles, unsigned threads) {
  std::uint64_t hashes[2];
  for (const bool ff : {false, true}) {
    bench::DesWorkload w =
        bench::make_des_workload(cores, sched, kStep, kPeriod, threads);
    hwsim::FastForwardPolicy pol;
    pol.enabled = ff;
    w.machine->set_fast_forward(pol);
    obs::TraceRecorder tr;
    w.machine->set_tracer(&tr);
    if (!w.machine->run_until(sim_cycles)) {
      std::fprintf(stderr, "fastforward: traced run hit watchdog\n");
      std::exit(1);
    }
    hashes[ff ? 1 : 0] = trace_hash(tr);
  }
  return hashes[0] == hashes[1];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_fastforward.json";
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      std::uint64_t v = 0;
      if (!bench::Harness::parse_count(argv[i] + 10, &v) || v == 0 ||
          v > 4096) {
        std::fprintf(stderr,
                     "--threads: expected a positive integer (<= 4096), "
                     "got '%s'\n",
                     argv[i] + 10);
        return 2;
      }
      threads = static_cast<unsigned>(v);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=FILE] [--threads=N]\n",
                   argv[0]);
      return 2;
    }
  }
  const int repeats = smoke ? 3 : 2;
  const Cycles sim = 20'000'000 / (smoke ? 10 : 1);
  const Cycles sim_traced = sim / 10;

  const std::vector<unsigned> core_counts{16, 64};
  const std::vector<hwsim::SchedulerKind> scheds{
      hwsim::SchedulerKind::kFrontier,
      hwsim::SchedulerKind::kLinearScan,
      hwsim::SchedulerKind::kParallelEpoch,
  };
  std::vector<Row> rows;
  // speedup[s][c]: scheds[s] at core_counts[c], wall_full / wall_ff.
  std::vector<std::vector<double>> speedup(scheds.size());
  bool traces_ok = true;

  std::printf("%-6s %-9s %-5s %12s %10s %12s %10s %12s %8s\n", "cores",
              "sched", "ff", "advances", "irqs", "ff_steps", "wall_ms",
              "events/s", "skip%");
  for (std::size_t s = 0; s < scheds.size(); ++s) {
    for (const unsigned cores : core_counts) {
      const Row full =
          run_one(cores, scheds[s], false, sim, threads, repeats);
      const Row ff = run_one(cores, scheds[s], true, sim, threads, repeats);
      // The digest must not depend on the fidelity mode.
      if (full.advances != ff.advances || full.irqs != ff.irqs ||
          full.sim_time != ff.sim_time) {
        std::fprintf(
            stderr,
            "fastforward: ff digest diverged (%s, %u cores: advances "
            "%llu vs %llu, irqs %llu vs %llu)\n",
            full.scheduler, cores,
            static_cast<unsigned long long>(full.advances),
            static_cast<unsigned long long>(ff.advances),
            static_cast<unsigned long long>(full.irqs),
            static_cast<unsigned long long>(ff.irqs));
        return 1;
      }
      if (full.ff_steps != 0 || ff.ff_steps == 0) {
        std::fprintf(stderr,
                     "fastforward: skip accounting wrong (%s, %u cores)\n",
                     full.scheduler, cores);
        return 1;
      }
      if (!traces_identical(cores, scheds[s], sim_traced, threads)) {
        std::fprintf(stderr,
                     "fastforward: traced runs diverged (%s, %u cores)\n",
                     full.scheduler, cores);
        traces_ok = false;
      }
      for (const Row& r : {full, ff}) {
        const double skip_pct =
            r.advances > 0
                ? 100.0 * static_cast<double>(r.ff_steps) /
                      static_cast<double>(r.advances)
                : 0.0;
        std::printf("%-6u %-9s %-5s %12llu %10llu %12llu %10.1f %12.0f "
                    "%7.1f%%\n",
                    r.cores, r.scheduler, r.ff ? "on" : "off",
                    static_cast<unsigned long long>(r.advances),
                    static_cast<unsigned long long>(r.irqs),
                    static_cast<unsigned long long>(r.ff_steps), r.wall_ms,
                    r.events_per_sec, skip_pct);
        rows.push_back(r);
      }
      const double sp = ff.wall_ms > 0.0 ? full.wall_ms / ff.wall_ms : 0.0;
      speedup[s].push_back(sp);
      std::printf("%-6u %-9s speedup ff/full %.2fx\n", cores,
                  full.scheduler, sp);
    }
  }
  if (!traces_ok) return 1;

  std::FILE* fp = std::fopen(out.c_str(), "w");
  if (fp == nullptr) {
    std::fprintf(stderr, "fastforward: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(fp,
               "{\n  \"bench\": \"fastforward\",\n"
               "  \"workload\": \"ipi+lapic heartbeat broadcast, %llu-cycle "
               "spin steps, %lluk-cycle period, %llu-cycle horizon\",\n"
               "  \"smoke\": %s,\n  \"host_threads\": %u,\n"
               "  \"host_cpus\": %u,\n  \"traces_identical\": true,\n"
               "  \"results\": [\n",
               static_cast<unsigned long long>(kStep),
               static_cast<unsigned long long>(kPeriod / 1'000),
               static_cast<unsigned long long>(sim), smoke ? "true" : "false",
               threads, std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        fp,
        "    {\"cores\": %u, \"scheduler\": \"%s\", \"ff\": %s, "
        "\"advances\": %llu, \"irqs\": %llu, \"ff_steps\": %llu, "
        "\"ff_cycles\": %llu, \"ff_windows\": %llu, \"sim_cycles\": %llu, "
        "\"wall_ms\": %.2f, \"events_per_sec\": %.0f}%s\n",
        r.cores, r.scheduler, r.ff ? "true" : "false",
        static_cast<unsigned long long>(r.advances),
        static_cast<unsigned long long>(r.irqs),
        static_cast<unsigned long long>(r.ff_steps),
        static_cast<unsigned long long>(r.ff_cycles),
        static_cast<unsigned long long>(r.ff_windows),
        static_cast<unsigned long long>(r.sim_time), r.wall_ms,
        r.events_per_sec, i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(fp, "  ],\n  \"speedup_ff_vs_full\": {");
  for (std::size_t s = 0; s < scheds.size(); ++s) {
    std::fprintf(fp, "%s\"%s\": {", s ? ", " : "",
                 sched_label(scheds[s]));
    for (std::size_t c = 0; c < core_counts.size(); ++c) {
      std::fprintf(fp, "%s\"%u\": %.2f", c ? ", " : "", core_counts[c],
                   speedup[s][c]);
    }
    std::fprintf(fp, "}");
  }
  std::fprintf(fp, "}\n}\n");
  std::fclose(fp);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
