// Fig. 4 reproduction: context-switch cost across the parameter space
// {Linux, specialized kernel} x {RT, non-RT} x {threads, fibers} x
// {cooperative, compiler-timed} x {FP, no-FP}, measured on the KNL-like
// machine by actual ping-pong execution.
#include <cstdio>

#include "harness.hpp"
#include "timing/ctx_switch_model.hpp"

using namespace iw;

int main(int argc, char** argv) {
  iw::bench::Harness harness;
  if (!harness.parse(argc, argv)) return 2;
  const auto costs = hwsim::CostModel::knl();
  const auto all = timing::measure_fig4(costs);

  std::printf("== Fig. 4: context switch cost (cycles, Phi KNL model) ==\n");
  std::printf("%-36s %14s %10s\n", "variant", "cycles/switch", "switches");
  for (const auto& m : all) {
    std::printf("%-36s %14.0f %10llu\n", m.variant.label().c_str(),
                m.cycles_per_switch,
                static_cast<unsigned long long>(m.switches));
  }

  // Headline ratios from the paper's annotations.
  auto find = [&](bool linux, bool rt, bool fp,
                  timing::SwitchKind kind) -> double {
    for (const auto& m : all) {
      if (m.variant.linux_stack == linux && m.variant.realtime == rt &&
          m.variant.fp == fp && m.variant.kind == kind) {
        return m.cycles_per_switch;
      }
    }
    return 0.0;
  };
  const double linux_fp =
      find(true, false, true, timing::SwitchKind::kThreadHwTimer);
  const double nk_fp =
      find(false, false, true, timing::SwitchKind::kThreadHwTimer);
  const double nk_nofp =
      find(false, false, false, timing::SwitchKind::kThreadHwTimer);
  const double fib_fp =
      find(false, false, true, timing::SwitchKind::kFiberCompTimed);
  const double fib_nofp =
      find(false, false, false, timing::SwitchKind::kFiberCompTimed);

  std::printf("\nheadlines (paper targets in parentheses):\n");
  std::printf("  linux non-RT FP switch:        %6.0f cycles (~5000)\n",
              linux_fp);
  std::printf("  kernel threads vs linux:       %6.2fx (about half)\n",
              linux_fp / nk_fp);
  std::printf("  comp-timed fibers vs threads:  %6.2fx lower, no FP (4x)\n",
              nk_nofp / fib_nofp);
  std::printf("  comp-timed fibers vs threads:  %6.2fx lower, FP (2.3x)\n",
              nk_fp / fib_fp);
  std::printf("  granularity floor:             %6.0f cycles (<600)\n",
              fib_nofp);
  return harness.finish() ? 0 : 1;
}
