// §IV-A table: CARAT guard overhead on real (natively executed) kernels.
//
// Paper: "the overheads are <6% (geometric mean)" for parallel codes
// once protection/tracking checks are aggregated and hoisted; the naive
// per-access placement is far more expensive — that delta is what this
// table shows, with real wall-clock measurements.
#include <algorithm>
#include <chrono>
#include <functional>
#include <cstdio>
#include <vector>

#include "carat/native_guards.hpp"
#include "carat/runtime.hpp"
#include "common/stats.hpp"
#include "harness.hpp"
#include "workloads/native_kernels.hpp"

using namespace iw;
using carat::CachedGuard;
using carat::FullGuard;
using carat::HoistedGuard;
using carat::NoGuard;

namespace {

bench::Harness harness;

volatile double g_sink;
volatile std::uint64_t g_sink_u64;

/// Best-of-N timing after warmup: robust to host noise, which is what
/// an overhead *ratio* between two fast loops needs.
double time_best_ms(int reps, const std::function<void()>& fn) {
  fn();  // warmup: faults + caches
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct KernelRow {
  const char* name;
  double base_ms;
  double full_ms;
  double cached_ms;
  double hoisted_ms;
};

template <typename F>
KernelRow run_kernel(const char* name, F&& with_policy) {
  KernelRow row{name, 0, 0, 0, 0};
  {
    NoGuard g;
    row.base_ms = with_policy(g, /*hoisted=*/false);
  }
  {
    FullGuard g;
    row.full_ms = with_policy(g, false);
  }
  {
    CachedGuard g;
    row.cached_ms = with_policy(g, false);
  }
  {
    HoistedGuard g;
    row.hoisted_ms = with_policy(g, true);
  }
  return row;
}

}  // namespace

/// Simulated-cost companion to the native table: the same guard/move
/// machinery running on the substrate, where costs are virtual cycles
/// on a core clock and --trace/--metrics-json capture them.
void simulated_substrate_section() {
  substrate::AnalyticSubstrate sub(1, harness.seed());
  harness.attach(sub, "carat/substrate");
  carat::CaratRuntime rt;
  rt.bind_substrate(&sub, 0);
  std::vector<Addr> live;
  Rng rng = sub.rng_stream("carat-bench");
  for (int i = 0; i < 256; ++i) {
    const auto a = rt.alloc(64 + rng.uniform(0, 960));
    if (a) live.push_back(*a);
  }
  // Free every other allocation to fragment, touch the survivors
  // through guards, then compact.
  for (std::size_t i = 0; i < live.size(); i += 2) rt.free(live[i]);
  for (std::size_t i = 1; i < live.size(); i += 2) {
    rt.check_range(live[i]);
    rt.check_access(live[i], 8, true);
    rt.write(live[i], static_cast<std::int64_t>(i));
  }
  const double frag_before = rt.fragmentation();
  const unsigned moved = rt.defragment();
  std::printf(
      "\n-- substrate replay: guards + compaction in virtual cycles --\n"
      "guards %llu, moves %u, bytes moved %llu, frag %.2f -> %.2f, "
      "core cycles %llu\n",
      static_cast<unsigned long long>(rt.stats().guard_checks +
                                      rt.stats().range_checks),
      moved, static_cast<unsigned long long>(rt.stats().bytes_moved),
      frag_before, rt.fragmentation(),
      static_cast<unsigned long long>(sub.core_now(0)));
}

int main(int argc, char** argv) {
  if (!harness.parse(argc, argv)) return 2;
  constexpr int kReps = 9;
  std::vector<KernelRow> rows;

  // stream triad
  rows.push_back(run_kernel("stream", [&](auto& g, bool hoisted) {
    std::vector<double> a(1 << 21), b(1 << 21, 1.5), c(1 << 21, 2.5);
    g.on_alloc(a.data(), a.size() * 8);
    g.on_alloc(b.data(), b.size() * 8);
    g.on_alloc(c.data(), c.size() * 8);
    return time_best_ms(kReps, [&] {
      g_sink = hoisted ? workloads::stream_triad_hoisted(g, a, b, c, 3.0)
                       : workloads::stream_triad_checked(g, a, b, c, 3.0);
    });
  }));

  // jacobi 2d
  rows.push_back(run_kernel("jacobi2d", [&](auto& g, bool hoisted) {
    const std::size_t n = 1024;
    std::vector<double> src(n * n, 1.0), dst(n * n, 0.0);
    g.on_alloc(src.data(), src.size() * 8);
    g.on_alloc(dst.data(), dst.size() * 8);
    return time_best_ms(kReps, [&] {
      g_sink = hoisted ? workloads::jacobi2d_hoisted(g, dst, src, n)
                       : workloads::jacobi2d_checked(g, dst, src, n);
    });
  }));

  // cg spmv
  rows.push_back(run_kernel("cg-spmv", [&](auto& g, bool hoisted) {
    const std::size_t n = 200'000;
    auto m = workloads::CsrMatrix::random(n, 13, 42);
    std::vector<double> x(n, 1.0), y(n, 0.0);
    g.on_alloc(m.val.data(), m.val.size() * 8);
    g.on_alloc(x.data(), x.size() * 8);
    g.on_alloc(y.data(), y.size() * 8);
    return time_best_ms(kReps, [&] {
      g_sink = hoisted ? workloads::cg_spmv_hoisted(g, m, x, y)
                       : workloads::cg_spmv_checked(g, m, x, y);
    });
  }));

  // nbody
  rows.push_back(run_kernel("nbody", [&](auto& g, bool hoisted) {
    std::vector<workloads::Body> bodies(1200);
    Rng rng(7);
    for (auto& b : bodies) {
      b = {rng.uniform_real(-1, 1), rng.uniform_real(-1, 1),
           rng.uniform_real(-1, 1), 0, 0, 0};
    }
    g.on_alloc(bodies.data(), bodies.size() * sizeof(workloads::Body));
    return time_best_ms(kReps, [&] {
      g_sink = hoisted ? workloads::nbody_step_hoisted(g, bodies, 1e-3)
                       : workloads::nbody_step_checked(g, bodies, 1e-3);
    });
  }));

  // pointer chase: hoisting impossible; the honest "hoisted" number is
  // the cached one-entry fast path CARAT leaves behind.
  rows.push_back(run_kernel("ptr-chase", [&](auto& g, bool) {
    const std::size_t n = 1 << 18;
    std::vector<workloads::ChaseNode> nodes(n);
    Rng rng(13);
    for (std::size_t i = 0; i < n; ++i) {
      nodes[i] = {static_cast<std::uint32_t>(rng.uniform(0, n - 1)),
                  i * 3};
    }
    g.on_alloc(nodes.data(), nodes.size() * sizeof(workloads::ChaseNode));
    return time_best_ms(kReps, [&] {
      g_sink_u64 = workloads::pointer_chase(g, nodes, 2'000'000);
    });
  }));
  // For ptr-chase the compiler cannot hoist: report the cached policy
  // as the achieved ("optimized") configuration.
  rows.back().hoisted_ms = rows.back().cached_ms;

  std::printf("== CARAT guard overhead (native wall clock, best of %d) ==\n",
              kReps);
  std::printf("%-10s %9s %9s %9s %9s %10s %10s\n", "kernel", "base_ms",
              "naive_ms", "cached_ms", "opt_ms", "naive_ovh", "opt_ovh");
  std::vector<double> naive_ratio, opt_ratio;
  for (const auto& r : rows) {
    const double nr = r.full_ms / r.base_ms;
    const double orr = r.hoisted_ms / r.base_ms;
    naive_ratio.push_back(nr);
    opt_ratio.push_back(orr);
    std::printf("%-10s %9.2f %9.2f %9.2f %9.2f %9.1f%% %9.1f%%\n", r.name,
                r.base_ms, r.full_ms, r.cached_ms, r.hoisted_ms,
                100 * (nr - 1), 100 * (orr - 1));
  }
  const double naive_geo = geomean(
      std::span<const double>(naive_ratio.data(), naive_ratio.size()));
  const double opt_geo = geomean(
      std::span<const double>(opt_ratio.data(), opt_ratio.size()));
  std::printf(
      "\ngeomean overhead: naive per-access guards %.1f%%, after CARAT "
      "aggregation+hoisting %.1f%%  (paper: <6%%)\n",
      100 * (naive_geo - 1), 100 * (opt_geo - 1));
  simulated_substrate_section();
  return harness.finish() ? 0 : 1;
}
