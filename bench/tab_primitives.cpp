// §III table: kernel primitive path lengths, Nautilus vs the Linux
// profile. Paper: "benchmarks show that primitives such as thread
// management and event signaling are orders of magnitude faster" and
// "application benchmark speedups from 20-40% over user-level execution
// on Linux have been demonstrated".
#include <cstdio>
#include <memory>
#include <string>

#include "linuxmodel/linux_stack.hpp"
#include "nautilus/event.hpp"
#include "nautilus/kernel.hpp"
#include "harness.hpp"

using namespace iw;

namespace {

bench::Harness harness;

struct Primitives {
  double thread_create;
  double wake_latency;
  double ctx_switch;
  double crossing;  // syscall round trip (0 for Nautilus: no boundary)
};

Primitives measure(bool linux_stack) {
  Primitives out{};
  // thread create + wake latency measured in the DES; both stacks run
  // the identical experiment.
  hwsim::MachineConfig mc;
  mc.num_cores = 2;
  mc.costs = hwsim::CostModel::knl();
  mc.max_advances = 100'000'000;
  const std::string stack_name = linux_stack ? "linux" : "nautilus";
  hwsim::Machine m(mc);
  harness.attach(m, stack_name + "/create+wake");
  std::unique_ptr<linuxmodel::LinuxStack> lx;
  std::unique_ptr<nautilus::Kernel> nk;
  nautilus::Kernel* k;
  if (linux_stack) {
    lx = std::make_unique<linuxmodel::LinuxStack>(m);
    k = &lx->kernel();
  } else {
    nk = std::make_unique<nautilus::Kernel>(m);
    k = nk.get();
  }
  k->attach();

  nautilus::WaitQueue wq(*k);
  Cycles created_at = 0, create_cost = 0, signaled_at = 0, woken_at = 0;

  nautilus::ThreadConfig sleeper;
  sleeper.bound_core = 0;
  auto phase = std::make_shared<int>(0);
  sleeper.body = [&, phase](nautilus::ThreadContext& ctx)
      -> nautilus::StepResult {
    if (*phase == 0) {
      *phase = 1;
      return nautilus::StepResult::block(10, &wq);
    }
    woken_at = ctx.core.clock();
    return nautilus::StepResult::done(10);
  };
  k->spawn(std::move(sleeper));

  nautilus::ThreadConfig driver;
  driver.bound_core = 1;
  auto dphase = std::make_shared<int>(0);
  driver.body = [&, dphase, linux_stack](nautilus::ThreadContext& ctx)
      -> nautilus::StepResult {
    switch ((*dphase)++) {
      case 0:
        return nautilus::StepResult::cont(20'000);  // let sleeper block
      case 1: {
        const Cycles before = ctx.core.clock();
        nautilus::ThreadConfig child;
        child.bound_core = 1;
        child.body = [](nautilus::ThreadContext&) {
          return nautilus::StepResult::done(1);
        };
        if (linux_stack) {
          lx->spawn_user_thread(std::move(child), &ctx.core);
        } else {
          ctx.kernel.spawn(std::move(child), &ctx.core);
        }
        created_at = ctx.core.clock();
        create_cost = created_at - before;
        return nautilus::StepResult::cont(10);
      }
      case 2: {
        if (linux_stack) lx->syscall(ctx.core);  // futex-wake crossing
        wq.signal(ctx.core);
        signaled_at = ctx.core.clock();
        return nautilus::StepResult::done(10);
      }
      default:
        return nautilus::StepResult::done(1);
    }
  };
  k->spawn(std::move(driver));
  m.run();

  out.thread_create = static_cast<double>(create_cost);
  out.wake_latency = static_cast<double>(woken_at - signaled_at);
  // ctx switch: measured separately by timing/ (Fig. 4); reproduce the
  // switch path cost here from a 200-switch ping-pong.
  {
    hwsim::Machine m2(mc);
    harness.attach(m2, stack_name + "/ctx-switch");
    std::unique_ptr<linuxmodel::LinuxStack> lx2;
    std::unique_ptr<nautilus::Kernel> nk2;
    nautilus::Kernel* k2;
    if (linux_stack) {
      lx2 = std::make_unique<linuxmodel::LinuxStack>(m2);
      k2 = &lx2->kernel();
    } else {
      nk2 = std::make_unique<nautilus::Kernel>(m2);
      k2 = nk2.get();
    }
    k2->attach();
    for (int t = 0; t < 2; ++t) {
      nautilus::ThreadConfig tc;
      tc.uses_fp = true;
      auto left = std::make_shared<int>(200);
      tc.body = [left](nautilus::ThreadContext&) -> nautilus::StepResult {
        if (--*left == 0) return nautilus::StepResult::done(20);
        return nautilus::StepResult::yield(20);
      };
      k2->spawn(std::move(tc));
    }
    m2.run();
    out.ctx_switch = static_cast<double>(k2->stats().switch_overhead) /
                     static_cast<double>(k2->stats().context_switches);
  }
  if (linux_stack) {
    hwsim::Machine m3(mc);
    harness.attach(m3, stack_name + "/crossing");
    linuxmodel::LinuxStack lx3(m3);
    const Cycles before = m3.core(0).clock();
    lx3.syscall(m3.core(0));
    out.crossing = static_cast<double>(m3.core(0).clock() - before);
  } else {
    out.crossing = 0.0;  // no kernel/user boundary exists
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (!harness.parse(argc, argv)) return 2;
  const auto linux = measure(true);
  const auto naut = measure(false);
  std::printf("== kernel primitives (cycles, KNL model) ==\n");
  std::printf("%-22s %12s %12s %8s\n", "primitive", "linux", "nautilus",
              "ratio");
  auto row = [](const char* name, double l, double n) {
    std::printf("%-22s %12.0f %12.0f %7.1fx\n", name, l, n,
                n > 0 ? l / n : 0.0);
  };
  row("thread create", linux.thread_create, naut.thread_create);
  row("event wake latency", linux.wake_latency, naut.wake_latency);
  row("context switch (FP)", linux.ctx_switch, naut.ctx_switch);
  std::printf("%-22s %12.0f %12s\n", "kernel crossing", linux.crossing,
              "none");
  std::printf(
      "\npaper: thread management and event signaling 'orders of magnitude "
      "faster'; no kernel/user boundary exists in Nautilus at all.\n");
  return harness.finish() ? 0 : 1;
}
