// §IV-B table: heartbeat scheduling overheads.
// Paper: "Across a range of benchmarks, the scheduling overheads are
// 13-22% on Linux, and reduce to at most 4.9% in Nautilus."
//
// Overhead = (makespan with heartbeat mechanism on) / (off) - 1 for a
// single worker (pure mechanism cost: signal/IRQ delivery + polls +
// self-promotions), across benchmarks of differing grain.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "heartbeat/fork_join.hpp"
#include "heartbeat/tpal.hpp"
#include "harness.hpp"

using namespace iw;

namespace {

bench::Harness harness;

struct Workload {
  const char* name;
  Cycles cycles_per_iter;
  std::uint64_t chunk;
};

double mechanism_overhead(bool linux_stack, const Workload& w,
                          double target_us) {
  auto makespan = [&](bool hb_on) -> Cycles {
    hwsim::MachineConfig mc;
    mc.num_cores = 1;
    mc.costs = hwsim::CostModel::knl();
    mc.max_advances = 2'000'000'000ULL;
    hwsim::Machine m(mc);
    harness.attach(m, std::string(w.name) + "/" +
                            (linux_stack ? "linux" : "nautilus") +
                            (hb_on ? "/hb-on" : "/hb-off"));
    std::unique_ptr<linuxmodel::LinuxStack> lx;
    std::unique_ptr<nautilus::Kernel> nk;
    nautilus::Kernel* k;
    std::unique_ptr<heartbeat::HeartbeatBackend> hb;
    if (linux_stack) {
      lx = std::make_unique<linuxmodel::LinuxStack>(m);
      k = &lx->kernel();
      if (hb_on) {
        hb = std::make_unique<heartbeat::LinuxHeartbeat>(
            *lx, heartbeat::LinuxHeartbeatMode::kPerThreadTimer);
      }
    } else {
      nk = std::make_unique<nautilus::Kernel>(m);
      k = nk.get();
      if (hb_on) hb = std::make_unique<heartbeat::NautilusHeartbeat>(m);
    }
    k->attach();
    heartbeat::TpalConfig cfg;
    cfg.num_workers = 1;
    cfg.total_iters = 1'000'000;
    cfg.cycles_per_iter = w.cycles_per_iter;
    cfg.chunk = w.chunk;
    cfg.heartbeat_period =
        hb_on ? mc.costs.freq.us_to_cycles(target_us) : 0;
    return heartbeat::TpalRuntime(*k, cfg, hb.get()).run().makespan;
  };
  const Cycles off = makespan(false);
  const Cycles on = makespan(true);
  return static_cast<double>(on) / static_cast<double>(off) - 1.0;
}

double forkjoin_overhead(bool linux_stack, double target_us) {
  auto makespan = [&](bool hb_on) -> Cycles {
    hwsim::MachineConfig mc;
    mc.num_cores = 1;
    mc.costs = hwsim::CostModel::knl();
    mc.max_advances = 2'000'000'000ULL;
    hwsim::Machine m(mc);
    harness.attach(m, std::string("tree-sum/") +
                            (linux_stack ? "linux" : "nautilus") +
                            (hb_on ? "/hb-on" : "/hb-off"));
    std::unique_ptr<linuxmodel::LinuxStack> lx;
    std::unique_ptr<nautilus::Kernel> nk;
    nautilus::Kernel* k;
    std::unique_ptr<heartbeat::HeartbeatBackend> hb;
    if (linux_stack) {
      lx = std::make_unique<linuxmodel::LinuxStack>(m);
      k = &lx->kernel();
      if (hb_on) {
        hb = std::make_unique<heartbeat::LinuxHeartbeat>(
            *lx, heartbeat::LinuxHeartbeatMode::kPerThreadTimer);
      }
    } else {
      nk = std::make_unique<nautilus::Kernel>(m);
      k = nk.get();
      if (hb_on) hb = std::make_unique<heartbeat::NautilusHeartbeat>(m);
    }
    k->attach();
    heartbeat::ForkJoinConfig cfg;
    cfg.num_workers = 1;
    cfg.tree_depth = 17;
    cfg.heartbeat_period =
        hb_on ? mc.costs.freq.us_to_cycles(target_us) : 0;
    return heartbeat::ForkJoinTpal(*k, cfg, hb.get()).run().makespan;
  };
  const Cycles off = makespan(false);
  const Cycles on = makespan(true);
  return static_cast<double>(on) / static_cast<double>(off) - 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!harness.parse(argc, argv)) return 2;
  const std::vector<Workload> workloads = {
      {"fine-grain-loop", 18, 32},
      {"mid-grain-loop", 30, 64},
      {"coarse-loop", 60, 128},
      {"spmv-like", 24, 48},
  };
  std::printf("== heartbeat scheduling overhead (1 worker, KNL) ==\n");
  std::printf("%-18s %14s %14s %14s %14s\n", "benchmark",
              "linux@100us", "nk@100us", "linux@20us", "nk@20us");
  std::vector<double> lin100, nk100;
  for (const auto& w : workloads) {
    const double l100 = mechanism_overhead(true, w, 100.0);
    const double n100 = mechanism_overhead(false, w, 100.0);
    const double l20 = mechanism_overhead(true, w, 20.0);
    const double n20 = mechanism_overhead(false, w, 20.0);
    lin100.push_back(l100);
    nk100.push_back(n100);
    std::printf("%-18s %13.1f%% %13.1f%% %13.1f%% %13.1f%%\n", w.name,
                100 * l100, 100 * n100, 100 * l20, 100 * n20);
  }
  {
    const double l100 = forkjoin_overhead(true, 100.0);
    const double n100 = forkjoin_overhead(false, 100.0);
    const double l20 = forkjoin_overhead(true, 20.0);
    const double n20 = forkjoin_overhead(false, 20.0);
    std::printf("%-18s %13.1f%% %13.1f%% %13.1f%% %13.1f%%\n",
                "tree-sum(forkjoin)", 100 * l100, 100 * n100, 100 * l20,
                100 * n20);
  }
  std::printf("\npaper: linux 13-22%%, nautilus <= 4.9%% (at ♥=100us)\n");
  std::printf("measured mean @100us: linux %.1f%%, nautilus %.1f%%\n",
              100 * mean(std::span<const double>(lin100.data(),
                                                 lin100.size())),
              100 * mean(std::span<const double>(nk100.data(),
                                                 nk100.size())));
  return harness.finish() ? 0 : 1;
}
