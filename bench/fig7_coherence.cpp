// Fig. 7 reproduction: speedup from selective coherence deactivation on
// PBBS-like kernels driven by MPL-style sharing annotations, on a
// dual-socket 24-core machine model. The paper reports ~46% average
// speedup and ~53% interconnect-energy reduction in its scenario.
#include <cstdio>
#include <string>
#include <vector>

#include "coherence/simulator.hpp"
#include "harness.hpp"
#include "common/stats.hpp"
#include "workloads/pbbs_traces.hpp"

using namespace iw;

namespace {
bench::Harness harness;
}  // namespace

namespace {

coherence::SimConfig cfg(bool deactivate) {
  coherence::SimConfig c;
  c.num_cores = 24;
  c.noc.num_cores = 24;
  c.private_cache = coherence::CacheConfig{64 * 1024, 8, 64};
  c.selective_deactivation = deactivate;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  if (!harness.parse(argc, argv)) return 2;
  workloads::PbbsParams p;
  p.cores = 24;
  p.elements = 240'000;
  p.rounds = 3;

  std::printf(
      "== Fig. 7: selective coherence deactivation (2x12-core model) ==\n");
  std::printf("%-8s %9s %12s %12s %12s %12s\n", "kernel", "speedup",
              "energy_cut", "dir_lookups", "invals_base", "invals_deact");

  std::vector<double> speedups, cuts;
  for (const auto& trace : workloads::pbbs_suite(p)) {
    // Each kernel runs on its own substrate timeline: misses show up as
    // spans per core under --trace, and coherence.* counters accumulate.
    substrate::AnalyticSubstrate sub(p.cores, harness.seed(p.seed));
    harness.attach(sub, std::string("fig7/") + trace.name);
    coherence::CoherenceSim base(cfg(false), sub.rng_stream("coherence"));
    base.bind_substrate(&sub);
    const auto b = base.run(trace);
    sub.reset_clocks();
    coherence::CoherenceSim deact(cfg(true), sub.rng_stream("coherence"));
    deact.bind_substrate(&sub);
    const auto d = deact.run(trace);
    const double speedup = static_cast<double>(b.total_latency) /
                           static_cast<double>(d.total_latency);
    const double cut = 1.0 - d.uncore_energy_pj() / b.uncore_energy_pj();
    speedups.push_back(speedup);
    cuts.push_back(cut);
    std::printf("%-8s %8.2fx %11.1f%% %5llu->%-5llu %12llu %12llu\n",
                trace.name.c_str(), speedup, 100 * cut,
                static_cast<unsigned long long>(b.directory_lookups / 1000),
                static_cast<unsigned long long>(d.directory_lookups / 1000),
                static_cast<unsigned long long>(b.invalidations),
                static_cast<unsigned long long>(d.invalidations));
  }
  std::printf("\naverage speedup:     %5.1f%%  (paper: ~46%%)\n",
              100 * (mean(std::span<const double>(speedups.data(),
                                                  speedups.size())) -
                     1.0));
  std::printf("average energy cut:  %5.1f%%  (paper: ~53%%)\n",
              100 * mean(std::span<const double>(cuts.data(), cuts.size())));
  std::printf(
      "\n(shape reproduced: private/RO-heavy kernels gain most; BFS's\n"
      "truly-shared visited array legitimately stays coherent. Our\n"
      "protocol model is conservative — see EXPERIMENTS.md.)\n");

  // Scale ablation: "the benefits grow with scale and disaggregation".
  std::printf("\n-- scale ablation (map kernel) --\n");
  std::printf("%-8s %9s %12s\n", "cores", "speedup", "energy_cut");
  for (unsigned cores : {8u, 16u, 24u, 48u}) {
    workloads::PbbsParams sp = p;
    sp.cores = cores;
    sp.elements = 10'000 * cores;
    const auto trace = workloads::pbbs_map(sp);
    auto c0 = cfg(false);
    c0.num_cores = cores;
    c0.noc.num_cores = cores;
    substrate::AnalyticSubstrate sub(cores, harness.seed(sp.seed));
    harness.attach(sub, "fig7/scale-" + std::to_string(cores));
    coherence::CoherenceSim base(c0, sub.rng_stream("coherence"));
    base.bind_substrate(&sub);
    const auto b = base.run(trace);
    auto c1 = cfg(true);
    c1.num_cores = cores;
    c1.noc.num_cores = cores;
    sub.reset_clocks();
    coherence::CoherenceSim deact(c1, sub.rng_stream("coherence"));
    deact.bind_substrate(&sub);
    const auto d = deact.run(trace);
    std::printf("%-8u %8.2fx %11.1f%%\n", cores,
                static_cast<double>(b.total_latency) /
                    static_cast<double>(d.total_latency),
                100 * (1.0 - d.uncore_energy_pj() / b.uncore_energy_pj()));
  }
  return harness.finish() ? 0 : 1;
}
