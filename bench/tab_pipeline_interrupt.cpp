// §V-D table: interrupt dispatch latency, classic IDT dispatch vs
// branch-injected pipeline interrupts. Paper: dispatch is "on the order
// of 1000 cycles"; injection is "similar to a correctly predicted
// branch... 100-1000x better".
#include <cstdio>

#include "harness.hpp"
#include "pipeline/interrupt_delivery.hpp"

using namespace iw;
using namespace iw::pipeline;

int main(int argc, char** argv) {
  bench::Harness harness;
  if (!harness.parse(argc, argv)) return 2;
  // The whole sweep replays on one analytic core: --trace shows every
  // delivered interrupt as a span, --seed steers the branchy stream.
  substrate::AnalyticSubstrate sub(1, harness.seed());
  harness.attach(sub, "pipeline-interrupts");
  PipelineConfig cfg;

  std::printf("== pipeline interrupts: dispatch latency (cycles) ==\n");
  std::printf("%-14s %12s %8s %8s %8s %8s %8s\n", "mechanism",
              "irq_period", "p50", "p99", "mean", "IPC", "count");

  for (Cycles period : {50'000u, 10'000u, 3'000u, 1'000u}) {
    PipelineResult classic, inject;
    for (auto mech :
         {DeliveryMechanism::kClassicIdt, DeliveryMechanism::kBranchInject}) {
      InterruptExperiment exp;
      exp.mechanism = mech;
      exp.total_instructions = 1'000'000;
      exp.interrupt_period = period;
      const auto res = run_pipeline(cfg, exp, &sub, 0);
      (mech == DeliveryMechanism::kClassicIdt ? classic : inject) = res;
      std::printf("%-14s %12llu %8llu %8llu %8.1f %8.2f %8llu\n",
                  mech == DeliveryMechanism::kClassicIdt ? "classic-idt"
                                                         : "branch-inject",
                  static_cast<unsigned long long>(period),
                  static_cast<unsigned long long>(
                      res.dispatch_latency.value_at_percentile(50)),
                  static_cast<unsigned long long>(
                      res.dispatch_latency.value_at_percentile(99)),
                  res.dispatch_latency.mean(), res.ipc(),
                  static_cast<unsigned long long>(res.interrupts_delivered));
    }
    std::printf("%-14s %12s dispatch ratio: %.0fx, IPC recovered: %+.1f%%\n",
                "", "",
                classic.dispatch_latency.mean() /
                    std::max(1.0, inject.dispatch_latency.mean()),
                100.0 * (inject.ipc() / classic.ipc() - 1.0));
  }
  std::printf(
      "\npaper: classic dispatch ~1000 cycles; injection 100-1000x "
      "better.\n");
  return harness.finish() ? 0 : 1;
}
