// Shared --trace=FILE / --metrics-json=FILE flag handling for bench
// programs. With neither flag the benches run with null observability
// sinks (the default-off path the determinism guarantee is stated
// against); with a flag the shared TraceRecorder / MetricsRegistry is
// attached to every machine the bench creates and written out once at
// exit.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hwsim/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace iw::bench {

class ObsFlags {
 public:
  /// Consume --trace=FILE and --metrics-json=FILE from argv (other
  /// arguments are ignored). Returns false and prints usage on a
  /// malformed observability flag.
  bool parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--trace=", 8) == 0) {
        trace_path_ = a + 8;
      } else if (std::strncmp(a, "--metrics-json=", 15) == 0) {
        metrics_path_ = a + 15;
      } else if (std::strcmp(a, "--trace") == 0 ||
                 std::strcmp(a, "--metrics-json") == 0) {
        std::fprintf(stderr,
                     "%s needs a value: %s=FILE (see --trace=FILE / "
                     "--metrics-json=FILE)\n",
                     a, a);
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] obs::TraceRecorder* tracer() {
    return trace_path_.empty() ? nullptr : &tracer_;
  }
  [[nodiscard]] obs::MetricsRegistry* metrics() {
    return metrics_path_.empty() ? nullptr : &metrics_;
  }

  /// Mark the start of a logical run (one Chrome-trace process per
  /// call). No-op unless tracing was requested.
  void begin_run(const std::string& label) {
    if (!trace_path_.empty()) tracer_.begin_process(label);
  }

  /// Attach the requested sinks to a machine about to run.
  void attach(hwsim::Machine& m, const std::string& label) {
    begin_run(label);
    m.set_tracer(tracer());
    m.set_metrics(metrics());
  }

  /// Write any requested output files; call once before exit.
  /// Returns false if a write failed.
  bool finish() {
    bool ok = true;
    if (!trace_path_.empty()) {
      if (tracer_.save_chrome_json(trace_path_)) {
        std::printf("trace: %llu events -> %s\n",
                    static_cast<unsigned long long>(tracer_.total_events()),
                    trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace: cannot write %s\n",
                     trace_path_.c_str());
        ok = false;
      }
    }
    if (!metrics_path_.empty()) {
      if (metrics_.save_json(metrics_path_)) {
        std::printf("metrics: %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "metrics: cannot write %s\n",
                     metrics_path_.c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  obs::TraceRecorder tracer_;
  obs::MetricsRegistry metrics_;
};

/// Shared --faults=SPEC / --fault-seed=N handling: parses a FaultPlan
/// (see hwsim/fault_plan.hpp for the spec grammar, e.g.
/// "drop=0.1,delay=0.05:14000,window=0-2000000") and applies it to
/// every MachineConfig the bench builds. With neither flag the plan
/// stays disabled and runs are bit-identical to a build without the
/// fault layer.
class FaultFlags {
 public:
  bool parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--faults=", 9) == 0) {
        std::string err;
        if (!hwsim::FaultPlan::parse(a + 9, &plan_, &err)) {
          std::fprintf(stderr, "--faults: %s\n", err.c_str());
          return false;
        }
      } else if (std::strncmp(a, "--fault-seed=", 13) == 0) {
        seed_ = std::strtoull(a + 13, nullptr, 10);
      } else if (std::strcmp(a, "--faults") == 0 ||
                 std::strcmp(a, "--fault-seed") == 0) {
        std::fprintf(stderr,
                     "%s needs a value: --faults=SPEC / --fault-seed=N\n",
                     a);
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool enabled() const { return plan_.enabled; }

  /// Install the parsed plan (and seed override) on a machine config.
  void apply(hwsim::MachineConfig& mc) const {
    mc.faults = plan_;
    mc.fault_seed = seed_;
  }

 private:
  hwsim::FaultPlan plan_;
  std::uint64_t seed_{0};
};

}  // namespace iw::bench
