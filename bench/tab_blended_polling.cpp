// §V-C table: blended device drivers. Paper: "these devices appear to
// behave as if they were interrupt-driven, but no interrupts ever occur
// for them" — compiler-injected constant-time polls replace the
// interrupt path at comparable latency.
#include <cstdio>

#include "harness.hpp"
#include "timing/device_polling.hpp"

using namespace iw;
using namespace iw::timing;

int main(int argc, char** argv) {
  bench::Harness harness;
  if (!harness.parse(argc, argv)) return 2;
  std::printf("== blended drivers: interrupt-driven vs compiler-injected "
              "polling ==\n");
  std::printf("%-18s %10s %10s %10s %12s %12s\n", "mode", "p50_cyc",
              "p99_cyc", "irqs", "overhead_cyc", "app_Mcyc");

  PollingExperimentConfig cfg;
  cfg.packets = 400;
  cfg.packet_gap = 90'000;
  const auto irq = run_interrupt_mode(cfg);
  std::printf("%-18s %10.0f %10.0f %10llu %12llu %12.2f\n",
              "interrupt-driven", irq.latency_p50, irq.latency_p99,
              static_cast<unsigned long long>(irq.interrupts),
              static_cast<unsigned long long>(irq.overhead_cycles),
              static_cast<double>(irq.app_completion) / 1e6);

  for (Cycles chunk : {8'000u, 2'000u, 500u}) {
    PollingExperimentConfig pc = cfg;
    pc.chunk = chunk;
    const auto poll = run_polled_mode(pc);
    char name[64];
    std::snprintf(name, sizeof(name), "polled@%llu",
                  static_cast<unsigned long long>(chunk));
    std::printf("%-18s %10.0f %10.0f %10llu %12llu %12.2f\n", name,
                poll.latency_p50, poll.latency_p99,
                static_cast<unsigned long long>(poll.interrupts),
                static_cast<unsigned long long>(poll.overhead_cycles),
                static_cast<double>(poll.app_completion) / 1e6);
  }
  std::printf(
      "\nshape: zero interrupts in polled mode; latency tracks the "
      "injected-check spacing chosen by the timing-placement pass, and a "
      "~1000-cycle spacing matches interrupt-mode latency while costing "
      "less overhead on the app core.\n");
  return harness.finish() ? 0 : 1;
}
