// §V-A (EPCC): Edinburgh-style OpenMP synchronization microbenchmarks
// across all execution modes. Paper: "All three implementations can run
// the full Edinburgh OpenMP microbenchmarks" — this table gives the
// per-construct overheads that explain Fig. 6.
#include <cstdio>
#include <string>

#include "harness.hpp"
#include "omp/runtime.hpp"
#include "omp/tasking.hpp"

using namespace iw;

namespace {

bench::Harness harness;

/// Barrier-dominated microbenchmark: tiny parallel regions repeated.
double per_barrier_cycles(omp::OmpMode mode, unsigned threads,
                          bool passive = false) {
  const auto app = workloads::epcc_syncbench(threads * 4, 200);
  omp::OmpConfig cfg;
  cfg.mode = mode;
  cfg.num_threads = threads;
  cfg.linux_passive_wait = passive;
  cfg.noise_gap_us = 0.0;  // isolate the construct overhead
  harness.begin_run(std::string("epcc/") + omp::mode_name(mode));
  cfg.tracer = harness.tracer();
  cfg.metrics = harness.metrics();
  const auto res = omp::run_miniapp(app, cfg);
  // Subtract the pure work component.
  const Cycles work = app.serial_work() / threads;
  const double over = static_cast<double>(res.makespan) -
                      static_cast<double>(work);
  return over / static_cast<double>(app.barriers());
}

}  // namespace

int main(int argc, char** argv) {
  if (!harness.parse(argc, argv)) return 2;
  std::printf("== EPCC-style sync overheads (cycles per construct) ==\n");
  std::printf("%-26s %8s %8s %8s %8s\n", "construct / mode", "P=2", "P=8",
              "P=16", "P=32");

  struct Row {
    const char* name;
    omp::OmpMode mode;
    bool passive;
  };
  for (const auto& r :
       {Row{"barrier linux(active)", omp::OmpMode::kLinux, false},
        Row{"barrier linux(passive)", omp::OmpMode::kLinux, true},
        Row{"barrier RTK(spin)", omp::OmpMode::kRTK, false},
        Row{"barrier PIK(spin)", omp::OmpMode::kPIK, false}}) {
    std::printf("%-26s", r.name);
    for (unsigned p : {2u, 8u, 16u, 32u}) {
      std::printf(" %8.0f", per_barrier_cycles(r.mode, p, r.passive));
    }
    std::printf("\n");
  }

  // EPCC task suite: per-task overhead of 600-cycle tasks through each
  // mode's dispatch path.
  std::printf("\n(task suite: per-task overhead, 600-cycle tasks)\n");
  for (omp::OmpMode mode : {omp::OmpMode::kLinux, omp::OmpMode::kRTK,
                            omp::OmpMode::kPIK, omp::OmpMode::kCCK}) {
    std::printf("%-26s", (std::string("task ") +
                          omp::mode_name(mode)).c_str());
    for (unsigned p : {2u, 8u, 16u, 32u}) {
      omp::TaskBenchConfig cfg;
      cfg.mode = mode;
      cfg.threads = p;
      cfg.num_tasks = 8'192;
      const auto res = omp::run_task_microbench(cfg);
      std::printf(" %8.0f", res.per_task_overhead);
    }
    std::printf("\n");
  }

  std::printf(
      "\nshape: in-kernel spin barriers stay flat with scale; the futex\n"
      "(passive) path grows with the serialized wake chain — the\n"
      "scalability mechanism behind Fig. 6.\n");
  return harness.finish() ? 0 : 1;
}
