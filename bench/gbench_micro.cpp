// google-benchmark microbenchmarks of the hot substrate primitives:
// these are the operations every simulated experiment leans on, so
// regressions here inflate every figure's wall-clock cost.
#include <benchmark/benchmark.h>

#include "carat/native_guards.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "des_workload.hpp"
#include "hwsim/arena.hpp"
#include "hwsim/event_queue.hpp"
#include "hwsim/machine.hpp"
#include "mem/buddy_allocator.hpp"
#include "mem/tlb.hpp"
#include "pipeline/branch_predictor.hpp"

using namespace iw;

namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngHeavyTail(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.heavy_tail(50.0, 1.2, 5000.0));
  }
}
BENCHMARK(BM_RngHeavyTail);

// Steady-state push+pop at a fixed occupancy: the heap depth (log of
// occupancy) is the per-event scheduler cost the frontier work targets.
void BM_EventQueuePushPop(benchmark::State& state) {
  const auto occupancy = static_cast<std::size_t>(state.range(0));
  hwsim::TimedQueue<hwsim::IrqEvent> q;
  Rng rng(7);
  std::uint64_t seq = 0;
  while (q.size() < occupancy) {
    hwsim::IrqEvent ev;
    ev.time = rng.uniform(0, 1'000'000);
    ev.seq = seq++;
    q.push(ev);
  }
  for (auto _ : state) {
    hwsim::IrqEvent ev;
    ev.time = rng.uniform(0, 1'000'000);
    ev.seq = seq++;
    q.push(ev);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(65536);

// Same traffic but legacy-closure CoreEvents: each push parks an
// out-of-line std::function (heap-allocating when the capture exceeds
// the small-buffer) and each pop takes it back. The gap against
// BM_EventQueuePushPop is what the tagged timer representation removes
// from the hot path.
void BM_EventQueuePushPopFn(benchmark::State& state) {
  const auto occupancy = static_cast<std::size_t>(state.range(0));
  hwsim::TimedQueue<hwsim::CoreEvent> q;
  Rng rng(7);
  std::uint64_t seq = 0;
  std::uint64_t sink = 0;
  const auto make_ev = [&] {
    hwsim::CoreEvent ev;
    ev.time = rng.uniform(0, 1'000'000);
    ev.seq = seq++;
    const std::uint64_t a = seq, b = seq + 1, c = seq + 2;
    ev.fn = q.park_fn([&sink, a, b, c] { sink += a + b + c; });
    return ev;
  };
  while (q.size() < occupancy) q.push(make_ev());
  for (auto _ : state) {
    q.push(make_ev());
    hwsim::CoreEvent ev = q.pop();
    q.take_fn(ev.fn)();
    benchmark::DoNotOptimize(ev);
  }
}
BENCHMARK(BM_EventQueuePushPopFn)->Arg(64)->Arg(1024)->Arg(65536);

// The packed-heap steady state the tentpole targets: pre-sized slab,
// provenance-style (counter << 16 | source) seqs, trivially copyable
// 16-byte heap records. bytes_per_hot_event in the throughput bench is
// sizeof the Rec this loop sifts.
void BM_EventQueuePushPopPacked(benchmark::State& state) {
  const auto occupancy = static_cast<std::size_t>(state.range(0));
  hwsim::TimedQueue<hwsim::IrqEvent> q;
  q.reserve(occupancy + 1);
  Rng rng(7);
  std::uint64_t counter = 0;
  const auto make_ev = [&] {
    hwsim::IrqEvent ev;
    ev.time = rng.uniform(0, 1'000'000);
    ev.seq = (counter++ << 16) | (counter & 0xFF);
    return ev;
  };
  while (q.size() < occupancy) q.push(make_ev());
  for (auto _ : state) {
    q.push(make_ev());
    benchmark::DoNotOptimize(q.pop());
  }
  state.counters["grow_allocs"] =
      benchmark::Counter(static_cast<double>(q.grow_allocs()));
}
BENCHMARK(BM_EventQueuePushPopPacked)->Arg(64)->Arg(1024)->Arg(65536);

// One epoch's worth of arena traffic: carve outbox-sized blocks, then
// reset. Steady state must be allocation-free (grows() flat) — the
// per-epoch contract ParallelEngine relies on.
void BM_EpochArenaReset(benchmark::State& state) {
  const auto carves = static_cast<std::size_t>(state.range(0));
  hwsim::EpochArena arena;
  for (auto _ : state) {
    for (std::size_t i = 0; i < carves; ++i) {
      benchmark::DoNotOptimize(arena.alloc(192, 64));
    }
    arena.reset();
  }
  state.counters["grows"] =
      benchmark::Counter(static_cast<double>(arena.grows()));
}
BENCHMARK(BM_EpochArenaReset)->Arg(8)->Arg(64)->Arg(256);

// Allocation-free timer-tagged CoreEvents (the dominant scheduled-work
// case after the LapicTimer/PosixTimer conversion).
void BM_EventQueuePushPopTimer(benchmark::State& state) {
  struct NullSink final : hwsim::TimerSink {
    void on_timer(hwsim::Core&, Cycles, std::uint64_t) override {}
  };
  static NullSink timer_sink;
  const auto occupancy = static_cast<std::size_t>(state.range(0));
  hwsim::TimedQueue<hwsim::CoreEvent> q;
  Rng rng(7);
  std::uint64_t seq = 0;
  const auto make_ev = [&] {
    hwsim::CoreEvent ev;
    ev.time = rng.uniform(0, 1'000'000);
    ev.seq = seq++;
    ev.timer = &timer_sink;
    ev.gen = seq;
    return ev;
  };
  while (q.size() < occupancy) q.push(make_ev());
  for (auto _ : state) {
    q.push(make_ev());
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_EventQueuePushPopTimer)->Arg(64)->Arg(1024)->Arg(65536);

// One full DES iteration (pick + advance) under the IPI+LAPIC heartbeat
// workload. Args: {cores, 0=frontier | 1=linear}. The frontier/linear
// gap at 64/256 cores is the headline scheduler win; absolute
// before/after numbers go in PR descriptions.
void BM_MachineAdvanceOnce(benchmark::State& state) {
  const auto cores = static_cast<unsigned>(state.range(0));
  const auto sched = state.range(1) == 0 ? hwsim::SchedulerKind::kFrontier
                                         : hwsim::SchedulerKind::kLinearScan;
  bench::DesWorkload w = bench::make_des_workload(cores, sched);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.machine->advance_n(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MachineAdvanceOnce)
    ->ArgNames({"cores", "linear"})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// The frontier refresh scan reads every core's cached next-action time.
// These two benches lock in the SoA hot-path slice: the machine now owns
// the cached times as one dense Cycles array (BM_SchedScanDense) instead
// of reading a 64B-padded cell inside each Core object
// (BM_SchedScanScattered) — ~8x fewer cache lines per scan at width 8.
void BM_SchedScanDense(benchmark::State& state) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  std::vector<Cycles> times(cores);
  Rng rng(11);
  for (auto& t : times) t = rng.uniform(0, 1'000'000);
  for (auto _ : state) {
    Cycles best = kNever;
    for (const Cycles t : times) best = std::min(best, t);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * cores));
}
BENCHMARK(BM_SchedScanDense)->Arg(64)->Arg(1024)->Arg(8192);

void BM_SchedScanScattered(benchmark::State& state) {
  struct alignas(64) PaddedTime {
    Cycles t{0};
  };
  const auto cores = static_cast<std::size_t>(state.range(0));
  std::vector<PaddedTime> times(cores);
  Rng rng(11);
  for (auto& c : times) c.t = rng.uniform(0, 1'000'000);
  for (auto _ : state) {
    Cycles best = kNever;
    for (const PaddedTime& c : times) best = std::min(best, c.t);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * cores));
}
BENCHMARK(BM_SchedScanScattered)->Arg(64)->Arg(1024)->Arg(8192);

// Cost of one quiet-window proof: the O(cores) scan fast-forward pays
// before every skip. It must stay cheap enough that a failed proof
// (plus the backoff) never shows up against event-stepped progress.
void BM_ProveQuietUntil(benchmark::State& state) {
  const auto cores = static_cast<unsigned>(state.range(0));
  bench::DesWorkload w =
      bench::make_des_workload(cores, hwsim::SchedulerKind::kFrontier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.machine->prove_quiet_until(kNever));
  }
}
BENCHMARK(BM_ProveQuietUntil)->Arg(16)->Arg(256)->Arg(4096);

// One 200k-cycle window of the long-quiet heartbeat workload (50-cycle
// steps, 100k beat period), full fidelity vs analytic skip-ahead.
// Args: {cores, ff}. The gap is the tentpole win at microbench scale;
// bench/fastforward.cpp measures it at run scale.
void BM_MachineRunWindow(benchmark::State& state) {
  const auto cores = static_cast<unsigned>(state.range(0));
  bench::DesWorkload w = bench::make_des_workload(
      cores, hwsim::SchedulerKind::kFrontier, 50, 100'000);
  hwsim::FastForwardPolicy pol;
  pol.enabled = state.range(1) != 0;
  w.machine->set_fast_forward(pol);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.machine->run_until(w.machine->now() + 200'000));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(w.machine->total_advances()));
}
BENCHMARK(BM_MachineRunWindow)
    ->ArgNames({"cores", "ff"})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_BuddyAllocFree(benchmark::State& state) {
  mem::BuddyAllocator buddy(0, 1 << 24, 64);
  Rng rng(3);
  std::vector<Addr> live;
  for (auto _ : state) {
    if (live.size() < 256 && rng.chance(0.6)) {
      if (auto a = buddy.alloc(rng.uniform(64, 4096))) live.push_back(*a);
    } else if (!live.empty()) {
      buddy.free(live.back());
      live.pop_back();
    }
  }
  for (Addr a : live) buddy.free(a);
}
BENCHMARK(BM_BuddyAllocFree);

void BM_TlbAccess(benchmark::State& state) {
  mem::Tlb tlb(mem::TlbConfig{64, 4096, 0, 130});
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.access(rng.uniform(0, (1 << 28) - 1)));
  }
}
BENCHMARK(BM_TlbAccess);

void BM_GuardCheckFull(benchmark::State& state) {
  carat::FullGuard g;
  std::vector<double> buf(4096);
  g.on_alloc(buf.data(), buf.size() * 8);
  std::size_t i = 0;
  for (auto _ : state) {
    g.check(&buf[i++ & 4095], 8);
  }
}
BENCHMARK(BM_GuardCheckFull);

void BM_GuardCheckCached(benchmark::State& state) {
  carat::CachedGuard g;
  std::vector<double> buf(4096);
  g.on_alloc(buf.data(), buf.size() * 8);
  std::size_t i = 0;
  for (auto _ : state) {
    g.check(&buf[i++ & 4095], 8);
  }
}
BENCHMARK(BM_GuardCheckCached);

void BM_GsharePredict(benchmark::State& state) {
  pipeline::GsharePredictor p;
  std::uint64_t pc = 0x1000;
  bool taken = false;
  for (auto _ : state) {
    taken = !taken;
    benchmark::DoNotOptimize(p.resolve(pc += 4, taken));
  }
}
BENCHMARK(BM_GsharePredict);

void BM_HistogramAdd(benchmark::State& state) {
  LatencyHistogram h;
  Rng rng(5);
  for (auto _ : state) {
    h.add(rng.uniform(1, 1'000'000));
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramAdd);

}  // namespace

BENCHMARK_MAIN();
