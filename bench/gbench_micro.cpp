// google-benchmark microbenchmarks of the hot substrate primitives:
// these are the operations every simulated experiment leans on, so
// regressions here inflate every figure's wall-clock cost.
#include <benchmark/benchmark.h>

#include "carat/native_guards.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "hwsim/event_queue.hpp"
#include "mem/buddy_allocator.hpp"
#include "mem/tlb.hpp"
#include "pipeline/branch_predictor.hpp"

using namespace iw;

namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngHeavyTail(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.heavy_tail(50.0, 1.2, 5000.0));
  }
}
BENCHMARK(BM_RngHeavyTail);

void BM_EventQueuePushPop(benchmark::State& state) {
  hwsim::EventQueue q;
  Rng rng(7);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    hwsim::Event ev;
    ev.time = rng.uniform(0, 1'000'000);
    ev.seq = seq++;
    q.push(std::move(ev));
    if (q.size() > 64) benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_EventQueuePushPop);

void BM_BuddyAllocFree(benchmark::State& state) {
  mem::BuddyAllocator buddy(0, 1 << 24, 64);
  Rng rng(3);
  std::vector<Addr> live;
  for (auto _ : state) {
    if (live.size() < 256 && rng.chance(0.6)) {
      if (auto a = buddy.alloc(rng.uniform(64, 4096))) live.push_back(*a);
    } else if (!live.empty()) {
      buddy.free(live.back());
      live.pop_back();
    }
  }
  for (Addr a : live) buddy.free(a);
}
BENCHMARK(BM_BuddyAllocFree);

void BM_TlbAccess(benchmark::State& state) {
  mem::Tlb tlb(mem::TlbConfig{64, 4096, 0, 130});
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.access(rng.uniform(0, (1 << 28) - 1)));
  }
}
BENCHMARK(BM_TlbAccess);

void BM_GuardCheckFull(benchmark::State& state) {
  carat::FullGuard g;
  std::vector<double> buf(4096);
  g.on_alloc(buf.data(), buf.size() * 8);
  std::size_t i = 0;
  for (auto _ : state) {
    g.check(&buf[i++ & 4095], 8);
  }
}
BENCHMARK(BM_GuardCheckFull);

void BM_GuardCheckCached(benchmark::State& state) {
  carat::CachedGuard g;
  std::vector<double> buf(4096);
  g.on_alloc(buf.data(), buf.size() * 8);
  std::size_t i = 0;
  for (auto _ : state) {
    g.check(&buf[i++ & 4095], 8);
  }
}
BENCHMARK(BM_GuardCheckCached);

void BM_GsharePredict(benchmark::State& state) {
  pipeline::GsharePredictor p;
  std::uint64_t pc = 0x1000;
  bool taken = false;
  for (auto _ : state) {
    taken = !taken;
    benchmark::DoNotOptimize(p.resolve(pc += 4, taken));
  }
}
BENCHMARK(BM_GsharePredict);

void BM_HistogramAdd(benchmark::State& state) {
  LatencyHistogram h;
  Rng rng(5);
  for (auto _ : state) {
    h.add(rng.uniform(1, 1'000'000));
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramAdd);

}  // namespace

BENCHMARK_MAIN();
