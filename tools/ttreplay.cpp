// ttreplay: time-travel replay over a checkpointed run.
//
// Runs the shared heartbeat workload to --horizon, capturing a
// deterministic snapshot every --checkpoint-every cycles plus a trace
// hash per checkpoint window. From there:
//
//   --replay=A:B        rewind to the newest checkpoint at or before A,
//                       re-run [A,B) in full fidelity with the paranoid
//                       frontier cross-checks enabled, twice, and verify
//                       the two replays are bit-identical (and, when the
//                       window lines up with the checkpoint grid, that
//                       they match the original pass).
//   --vs-scheduler=NAME re-run the whole horizon under a second
//   --vs-fault-seed=N   configuration and localize the first checkpoint
//                       window whose trace diverges — schedulers must
//                       never diverge (that is the determinism
//                       guarantee); fault seeds legitimately do, and the
//                       divergent window is where to start reading.
//   --selftest          exercise all of the above on a small config.
//
// Shares the bench harness flag surface (--faults, --seed, --scheduler,
// --threads, --steal, --ff, --checkpoint-every, ...).
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "harness.hpp"
#include "hwsim/machine.hpp"
#include "hwsim/snapshot.hpp"
#include "obs/trace.hpp"
#include "replay_workload.hpp"

namespace iw::tools {
namespace {

std::uint64_t trace_hash(const obs::TraceRecorder& tr) {
  std::ostringstream os;
  tr.write_text(os);
  const std::string s = os.str();
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct Options {
  unsigned cores{8};
  Cycles horizon{2'000'000};
  Cycles period{20'000};
  Cycles every{100'000};
  bool have_replay{false};
  Cycles replay_a{0};
  Cycles replay_b{0};
  bool have_vs_sched{false};
  hwsim::SchedulerKind vs_sched{hwsim::SchedulerKind::kLinearScan};
  bool have_vs_fault_seed{false};
  std::uint64_t vs_fault_seed{0};
  bool selftest{false};
};

/// One checkpointed forward pass, kept alive so its snapshots can be
/// restored (snapshots only restore into the machine that took them).
class Session {
 public:
  Session(const hwsim::MachineConfig& mc, const Options& opt)
      : opt_(opt), machine_(mc) {
    workload_ =
        std::make_unique<ReplayWorkload>(machine_, opt_.period, false);
    ring_.push_back(machine_.snapshot());
    for (Cycles t = opt_.every; ; t += opt_.every) {
      const Cycles stop = std::min(t, opt_.horizon);
      obs::TraceRecorder tr;
      machine_.set_tracer(&tr);
      run_to(stop);
      window_hashes_.push_back(trace_hash(tr));
      ring_.push_back(machine_.snapshot());
      if (stop == opt_.horizon) break;
    }
  }

  [[nodiscard]] const std::vector<std::uint64_t>& window_hashes() const {
    return window_hashes_;
  }
  [[nodiscard]] Cycles window_start(std::size_t w) const {
    return w * opt_.every;
  }
  [[nodiscard]] Cycles window_end(std::size_t w) const {
    return std::min<Cycles>((w + 1) * opt_.every, opt_.horizon);
  }

  /// Re-run [a,b) in full fidelity: restore the newest checkpoint at or
  /// before `a`, run dark to `a`, then trace to `b`. Paranoid frontier
  /// cross-checks stay on for the whole replay.
  std::uint64_t replay(Cycles a, Cycles b) {
    // The earliest checkpoint sits a few cycles past zero (workload
    // construction consumes machine-context time before it is taken),
    // so it serves as the floor for any earlier `a`.
    const hwsim::Snapshot* from = &ring_.front();
    for (const hwsim::Snapshot& s : ring_) {
      if (s.at <= a) from = &s;
    }
    machine_.restore(*from);
    machine_.set_paranoid_frontier(true);
    obs::TraceRecorder warmup;
    machine_.set_tracer(&warmup);
    run_to(std::max(a, from->at));
    obs::TraceRecorder tr;
    machine_.set_tracer(&tr);
    run_to(b);
    machine_.set_paranoid_frontier(false);
    return trace_hash(tr);
  }

 private:
  void run_to(Cycles t) {
    if (!machine_.run_until(t)) {
      std::fprintf(stderr, "ttreplay: advance budget exhausted\n");
      std::exit(2);
    }
  }

  Options opt_;
  hwsim::Machine machine_;
  std::unique_ptr<ReplayWorkload> workload_;
  std::vector<hwsim::Snapshot> ring_;
  std::vector<std::uint64_t> window_hashes_;
};

hwsim::MachineConfig base_config(const Options& opt,
                                 iw::bench::Harness& hx) {
  hwsim::MachineConfig mc;
  mc.num_cores = opt.cores;
  mc.scheduler = hx.scheduler(hwsim::SchedulerKind::kFrontier);
  mc.shard_policy = hwsim::ShardPolicy::kPerCore;
  mc.threads = hx.threads();
  mc.work_stealing = hx.work_stealing();
  mc.fast_forward.enabled = hx.fast_forward();
  mc.max_advances = ~std::uint64_t{0};
  mc.seed = hx.seed(42);
  hx.apply(mc);
  return mc;
}

/// Compare two sessions window-by-window; returns the first divergent
/// window index, or -1 if the runs are bit-identical throughout.
long first_divergent_window(const Session& a, const Session& b) {
  const auto& ha = a.window_hashes();
  const auto& hb = b.window_hashes();
  const std::size_t n = std::min(ha.size(), hb.size());
  for (std::size_t w = 0; w < n; ++w) {
    if (ha[w] != hb[w]) return static_cast<long>(w);
  }
  if (ha.size() != hb.size()) return static_cast<long>(n);
  return -1;
}

int run(const Options& opt, iw::bench::Harness& hx) {
  const hwsim::MachineConfig mc = base_config(opt, hx);
  Session base(mc, opt);
  std::printf("forward pass: %zu windows of %" PRIu64 " cycles\n",
              base.window_hashes().size(), opt.every);

  int rc = 0;
  if (opt.have_replay) {
    const Cycles a = opt.replay_a;
    const Cycles b = std::min(opt.replay_b, opt.horizon);
    const std::uint64_t h1 = base.replay(a, b);
    const std::uint64_t h2 = base.replay(a, b);
    const bool stable = h1 == h2;
    std::printf("replay [%" PRIu64 ", %" PRIu64 "): hash %016" PRIx64
                " (paranoid, %s)\n",
                a, b, h1, stable ? "stable across two replays" : "UNSTABLE");
    if (!stable) rc = 1;
    if (a % opt.every == 0 && b == std::min<Cycles>(a + opt.every,
                                                    opt.horizon)) {
      const std::size_t w = a / opt.every;
      const bool match = base.window_hashes()[w] == h1;
      std::printf("  window %zu original hash %016" PRIx64 " -> %s\n", w,
                  base.window_hashes()[w],
                  match ? "match" : "MISMATCH");
      if (!match) rc = 1;
    }
  }

  if (opt.have_vs_sched || opt.have_vs_fault_seed) {
    hwsim::MachineConfig alt = mc;
    const char* what = "";
    if (opt.have_vs_sched) {
      alt.scheduler = opt.vs_sched;
      what = "scheduler";
    }
    if (opt.have_vs_fault_seed) {
      alt.fault_seed = opt.vs_fault_seed;
      what = "fault seed";
    }
    Session other(alt, opt);
    const long w = first_divergent_window(base, other);
    if (w < 0) {
      std::printf("vs %s: bit-identical across all %zu windows\n", what,
                  base.window_hashes().size());
      // A scheduler change must never diverge; a fault-seed change
      // normally does, but identical traces are not an error.
    } else {
      const Cycles ws = base.window_start(static_cast<std::size_t>(w));
      const Cycles we = base.window_end(static_cast<std::size_t>(w));
      std::printf("vs %s: first divergence in window %ld "
                  "[%" PRIu64 ", %" PRIu64 ")\n",
                  what, w, ws, we);
      const std::uint64_t hb = base.replay(ws, we);
      const std::uint64_t ho = other.replay(ws, we);
      std::printf("  paranoid replay: base %016" PRIx64 " vs alt %016"
                  PRIx64 " -> %s\n",
                  hb, ho, hb == ho ? "CONVERGED (suspicious)" : "diverged");
      if (opt.have_vs_sched && !opt.have_vs_fault_seed) {
        std::fprintf(stderr,
                     "ttreplay: scheduler change diverged — determinism "
                     "violation\n");
        rc = 1;
      }
    }
  }
  return rc;
}

int selftest() {
  Options opt;
  opt.cores = 4;
  opt.horizon = 600'000;
  opt.every = 50'000;

  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("selftest: %-44s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };

  iw::bench::Harness hx;
  {
    char prog[] = "ttreplay";
    char faults[] = "--faults=drop=0.2,jitter=0.2:300";
    char* argv[] = {prog, faults, nullptr};
    if (!hx.parse(2, argv)) return 2;
  }
  const hwsim::MachineConfig mc = base_config(opt, hx);
  Session base(mc, opt);

  // Every window replays to its original hash, under paranoid checks.
  bool all_match = true;
  for (std::size_t w = 0; w < base.window_hashes().size(); ++w) {
    const std::uint64_t h =
        base.replay(base.window_start(w), base.window_end(w));
    all_match = all_match && h == base.window_hashes()[w];
  }
  check(all_match, "window replays match the forward pass");

  // An unaligned window is stable across two replays.
  const std::uint64_t u1 = base.replay(123'000, 287'000);
  const std::uint64_t u2 = base.replay(123'000, 287'000);
  check(u1 == u2, "unaligned replay is deterministic");

  // A scheduler swap is bit-identical (the determinism guarantee).
  {
    hwsim::MachineConfig alt = mc;
    alt.scheduler = hwsim::SchedulerKind::kLinearScan;
    Session other(alt, opt);
    check(first_divergent_window(base, other) == -1,
          "linear-scan scheduler is bit-identical");
  }
  {
    hwsim::MachineConfig alt = mc;
    alt.scheduler = hwsim::SchedulerKind::kParallelEpoch;
    alt.threads = 2;
    Session other(alt, opt);
    check(first_divergent_window(base, other) == -1,
          "parallel-epoch scheduler is bit-identical");
  }

  // A different fault seed diverges, and the divergence localizes.
  {
    hwsim::MachineConfig alt = mc;
    alt.fault_seed = 0xfeedbeefULL;
    Session other(alt, opt);
    const long w = first_divergent_window(base, other);
    check(w >= 0, "fault-seed change diverges");
    if (w >= 0) {
      const Cycles ws = base.window_start(static_cast<std::size_t>(w));
      const Cycles we = base.window_end(static_cast<std::size_t>(w));
      check(base.replay(ws, we) != other.replay(ws, we),
            "divergent window re-diverges under paranoid replay");
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace iw::tools

int main(int argc, char** argv) {
  iw::bench::Harness hx;
  if (!hx.parse(argc, argv)) return 2;
  iw::tools::Options opt;
  if (hx.checkpoint_every() != 0) opt.every = hx.checkpoint_every();
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--cores=", 8) == 0) {
      opt.cores = static_cast<unsigned>(std::strtoul(a + 8, nullptr, 10));
    } else if (std::strncmp(a, "--horizon=", 10) == 0) {
      opt.horizon = std::strtoull(a + 10, nullptr, 10);
    } else if (std::strncmp(a, "--period=", 9) == 0) {
      opt.period = std::strtoull(a + 9, nullptr, 10);
    } else if (std::strncmp(a, "--replay=", 9) == 0) {
      char* colon = nullptr;
      opt.replay_a = std::strtoull(a + 9, &colon, 10);
      if (colon == nullptr || *colon != ':') {
        std::fprintf(stderr, "--replay: expected A:B cycle range\n");
        return 2;
      }
      opt.replay_b = std::strtoull(colon + 1, nullptr, 10);
      opt.have_replay = true;
    } else if (std::strncmp(a, "--vs-scheduler=", 15) == 0) {
      if (!iw::bench::Harness::parse_scheduler(a + 15, &opt.vs_sched)) {
        std::fprintf(stderr, "--vs-scheduler: unknown scheduler '%s'\n",
                     a + 15);
        return 2;
      }
      opt.have_vs_sched = true;
    } else if (std::strncmp(a, "--vs-fault-seed=", 16) == 0) {
      opt.vs_fault_seed = std::strtoull(a + 16, nullptr, 10);
      opt.have_vs_fault_seed = true;
    } else if (std::strcmp(a, "--selftest") == 0) {
      opt.selftest = true;
    }
  }
  if (opt.selftest) return iw::tools::selftest();
  return iw::tools::run(opt, hx);
}
