// The workload both forensic tools (ttreplay, fault_bisect) drive: a
// heartbeat-supervised machine with every core spinning. It exists so
// the two tools bisect and replay the *same* trajectory — a divergence
// localized by ttreplay can be handed to fault_bisect unchanged.
//
// The spin driver is stateless (a fixed cycle cost per step), so the
// only snapshot participant the workload adds is the heartbeat backend
// itself — which self-registers in its constructor. Construction order
// still matters: build the workload only after the injector is in its
// final mode (recording or scripted), because starting the heartbeat
// arms timers and that already consumes fault opportunities.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "heartbeat/delivery.hpp"
#include "hwsim/machine.hpp"

namespace iw::tools {

/// Fixed-cost spin: every core always runnable, 200 cycles per step.
/// Stateless by design — nothing to snapshot.
class SpinDriver final : public hwsim::CoreDriver {
 public:
  bool runnable(hwsim::Core&) override { return true; }
  void step(hwsim::Core& core) override { core.consume(200); }
};

/// Heartbeat-supervised spin workload. The interbeat statistics the
/// supervisor keeps per worker are the tools' failure oracle: a fault
/// schedule "fails" when some worker's worst interbeat gap exceeds
/// `gap_factor` periods.
class ReplayWorkload {
 public:
  ReplayWorkload(hwsim::Machine& m, Cycles period, bool fault_tolerant)
      : machine_(m), hb_(m), period_(period) {
    for (unsigned c = 0; c < m.num_cores(); ++c) {
      m.core(c).set_driver(&driver_);
    }
    if (fault_tolerant) {
      heartbeat::FaultToleranceConfig ft;
      ft.enabled = true;
      hb_.set_fault_tolerance(ft);
    }
    hb_.start(period, m.num_cores());
  }

  [[nodiscard]] heartbeat::NautilusHeartbeat& heartbeat() { return hb_; }
  [[nodiscard]] Cycles period() const { return period_; }

  /// Worst interbeat gap any worker has seen, in periods.
  [[nodiscard]] double max_gap_periods() const {
    double worst = 0.0;
    for (unsigned c = 0; c < machine_.num_cores(); ++c) {
      const double g = hb_.state(c).interbeat.max();
      if (g > worst) worst = g;
    }
    return worst / static_cast<double>(period_);
  }

  /// The failure predicate shared by fault_bisect and its selftest.
  [[nodiscard]] bool failed(double gap_factor) const {
    return max_gap_periods() > gap_factor;
  }

 private:
  hwsim::Machine& machine_;
  SpinDriver driver_;
  heartbeat::NautilusHeartbeat hb_;
  Cycles period_;
};

}  // namespace iw::tools
