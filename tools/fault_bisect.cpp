// fault_bisect: shrink a failing fault schedule to a minimal reproducer.
//
// A probabilistic FaultPlan that makes a run fail (a worker's interbeat
// gap blows past --gap-factor periods) typically arms hundreds to
// thousands of individual fault events, almost all of which are
// irrelevant to the failure. This tool
//
//   1. records the probabilistic run's materialized fault schedule
//      (every armed event, identified by provenance — stream, site,
//      opportunity index),
//   2. re-runs it *scripted* (zero RNG draws) while capturing a
//      checkpoint ring of deterministic snapshots, and
//   3. delta-debugs (ddmin) the event list down to a minimal failing
//      subset, restoring each trial from the nearest checkpoint that
//      precedes the first removed event instead of re-running the
//      prologue from cycle zero.
//
// The same ddmin loop also runs in from-scratch mode (every trial
// restores the t=0 checkpoint); the tool asserts both modes converge on
// the same minimal set and reports the wall-clock ratio — that ratio is
// the number CI guards (BENCH_bisect.json, --profile=bisect).
//
// Flags (on top of the shared bench harness surface):
//   --cores=N --horizon=T --period=P --gap-factor=F --min-events=N
//   --out=FILE --smoke --selftest
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "harness.hpp"
#include "hwsim/fault_plan.hpp"
#include "hwsim/machine.hpp"
#include "hwsim/snapshot.hpp"
#include "replay_workload.hpp"

namespace iw::tools {
namespace {

struct Options {
  unsigned cores{16};
  Cycles horizon{6'000'000};
  Cycles period{20'000};
  Cycles every{250'000};
  double gap_factor{2.5};
  std::size_t min_events{1000};
  std::string out;
  bool smoke{false};
  bool selftest{false};
};

/// The default failing plan: a dense fault window late in the horizon
/// (the shape of the BENCH_fault_sweep p99 outlier — a long healthy
/// prologue, then a burst), arming well over a thousand events and
/// failing through back-to-back heartbeat IPI drops. The late window is
/// exactly where checkpoint-accelerated bisection pays: every trial
/// restores at the window edge instead of re-running the prologue.
constexpr const char* kDefaultSpec =
    "drop=0.35,delay=0.3:600,dup=0.05,jitter=0.3:300,spurious=0.04,"
    "stall=0.015:300,window=5000000-5800000";

bool same_event(const hwsim::FaultEvent& a, const hwsim::FaultEvent& b) {
  return a.stream == b.stream && a.site == b.site && a.index == b.index;
}

/// Earliest recorded time of an event in `all` but not in `subset`
/// (both sorted the way recorded_events() returns them). The trial
/// trajectory is bit-identical to the full scripted run strictly before
/// this instant, so any checkpoint earlier than it is a valid restore
/// point for the trial.
Cycles first_removed_time(const std::vector<hwsim::FaultEvent>& all,
                          const std::vector<hwsim::FaultEvent>& subset) {
  std::size_t j = 0;
  for (const hwsim::FaultEvent& ev : all) {
    if (j < subset.size() && same_event(ev, subset[j])) {
      ++j;
    } else {
      return ev.time;
    }
  }
  return kNever;  // subset == all: nothing removed
}

/// One reusable bisection session: a single machine instance (snapshots
/// only restore into the machine that took them) plus the checkpoint
/// ring captured under the full recorded script.
class BisectSession {
 public:
  BisectSession(const hwsim::MachineConfig& mc, const hwsim::FaultPlan& plan,
                const std::vector<hwsim::FaultEvent>& all, const Options& opt)
      : plan_(plan), all_(all), baseline_(all), opt_(opt), machine_(mc) {
    // Script before the workload exists: starting the heartbeat arms
    // timers, which already consumes fault opportunities.
    machine_.fault_injector().set_script(plan_, all_);
    workload_ =
        std::make_unique<ReplayWorkload>(machine_, opt_.period, false);
    checkpoints_.push_back(machine_.snapshot());
    for (Cycles t = opt_.every; t < opt_.horizon; t += opt_.every) {
      run_to(t);
      checkpoints_.push_back(machine_.snapshot());
    }
    run_to(opt_.horizon);
    full_fails_ = workload_->failed(opt_.gap_factor);
  }

  [[nodiscard]] bool full_script_fails() const { return full_fails_; }
  [[nodiscard]] std::size_t checkpoints() const {
    return checkpoints_.size();
  }

  /// Does the failure reproduce under the subset schedule? In
  /// checkpoint mode the trial restores from the latest snapshot that
  /// strictly precedes the first event the subset removed (relative to
  /// the schedule the ring was captured under); in scratch mode it
  /// always rewinds to the earliest checkpoint.
  bool trial_fails(const std::vector<hwsim::FaultEvent>& subset,
                   bool use_checkpoints) {
    ++tests_;
    machine_.fault_injector().set_script(plan_, subset);
    const hwsim::Snapshot* from = &checkpoints_.front();
    if (use_checkpoints) {
      const Cycles diverge = first_removed_time(baseline_, subset);
      for (const hwsim::Snapshot& s : checkpoints_) {
        if (s.at < diverge) from = &s;
      }
    }
    machine_.restore(*from);
    // The gap predicate is monotone (a running max), so a trial can
    // stop at the first checkpoint interval where it trips — both
    // modes get the early exit; only the skipped prologue differs.
    Cycles t = from->at;
    while (t < opt_.horizon && !workload_->failed(opt_.gap_factor)) {
      const Cycles stop =
          std::min<Cycles>((t / opt_.every + 1) * opt_.every, opt_.horizon);
      run_to(stop);
      cycles_replayed_ += stop - t;
      t = stop;
    }
    return workload_->failed(opt_.gap_factor);
  }

  /// Adopt a reduced schedule as the new baseline: keep the checkpoint
  /// prefix that is still on its trajectory and recapture the suffix
  /// under the new script. Without this, every trial after the first
  /// reduction diverges from the *original* schedule almost
  /// immediately and the ring degenerates to from-scratch replay.
  void rebaseline(const std::vector<hwsim::FaultEvent>& cur) {
    const Cycles diverge = first_removed_time(baseline_, cur);
    std::size_t keep = 1;
    while (keep < checkpoints_.size() && checkpoints_[keep].at < diverge) {
      ++keep;
    }
    machine_.fault_injector().set_script(plan_, cur);
    machine_.restore(checkpoints_[keep - 1]);
    checkpoints_.resize(keep);
    const Cycles from = checkpoints_.back().at;
    cycles_replayed_ += opt_.horizon - from;
    for (Cycles t = (from / opt_.every + 1) * opt_.every; t < opt_.horizon;
         t += opt_.every) {
      run_to(t);
      checkpoints_.push_back(machine_.snapshot());
    }
    baseline_ = cur;
  }

  /// Classic ddmin. Subsets of the (sorted) recorded list stay sorted,
  /// which first_removed_time() and set_script() both rely on.
  std::vector<hwsim::FaultEvent> ddmin(bool use_checkpoints) {
    std::vector<hwsim::FaultEvent> cur = all_;
    std::size_t n = 2;
    while (cur.size() >= 2) {
      const std::size_t chunk = (cur.size() + n - 1) / n;
      bool reduced = false;
      for (std::size_t i = 0; i < n && !reduced; ++i) {
        const std::size_t lo = std::min(i * chunk, cur.size());
        const std::size_t hi = std::min(lo + chunk, cur.size());
        if (lo == hi) continue;
        std::vector<hwsim::FaultEvent> part(cur.begin() + lo,
                                            cur.begin() + hi);
        if (trial_fails(part, use_checkpoints)) {
          cur = std::move(part);
          n = 2;
          reduced = true;
          if (use_checkpoints) rebaseline(cur);
        }
      }
      for (std::size_t i = 0; i < n && !reduced; ++i) {
        const std::size_t lo = std::min(i * chunk, cur.size());
        const std::size_t hi = std::min(lo + chunk, cur.size());
        if (lo == hi || (lo == 0 && hi == cur.size())) continue;
        std::vector<hwsim::FaultEvent> rest;
        rest.reserve(cur.size() - (hi - lo));
        rest.insert(rest.end(), cur.begin(), cur.begin() + lo);
        rest.insert(rest.end(), cur.begin() + hi, cur.end());
        if (trial_fails(rest, use_checkpoints)) {
          cur = std::move(rest);
          n = std::max<std::size_t>(n - 1, 2);
          reduced = true;
          if (use_checkpoints) rebaseline(cur);
        }
      }
      if (!reduced) {
        if (n >= cur.size()) break;
        n = std::min(cur.size(), n * 2);
      }
    }
    return cur;
  }

  [[nodiscard]] std::uint64_t tests() const { return tests_; }
  [[nodiscard]] std::uint64_t cycles_replayed() const {
    return cycles_replayed_;
  }
  void reset_counters() {
    tests_ = 0;
    cycles_replayed_ = 0;
  }

 private:
  void run_to(Cycles t) {
    if (!machine_.run_until(t)) {
      std::fprintf(stderr, "fault_bisect: advance budget exhausted\n");
      std::exit(2);
    }
  }

  hwsim::FaultPlan plan_;
  std::vector<hwsim::FaultEvent> all_;
  /// The schedule the checkpoint ring is currently captured under.
  std::vector<hwsim::FaultEvent> baseline_;
  Options opt_;
  hwsim::Machine machine_;
  std::unique_ptr<ReplayWorkload> workload_;
  std::vector<hwsim::Snapshot> checkpoints_;
  bool full_fails_{false};
  std::uint64_t tests_{0};
  std::uint64_t cycles_replayed_{0};
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int run(const Options& opt, iw::bench::Harness& hx) {
  hwsim::MachineConfig mc;
  mc.num_cores = opt.cores;
  mc.scheduler = hx.scheduler(hwsim::SchedulerKind::kFrontier);
  mc.shard_policy = hwsim::ShardPolicy::kPerCore;
  mc.threads = hx.threads();
  mc.work_stealing = hx.work_stealing();
  mc.fast_forward.enabled = hx.fast_forward();
  mc.max_advances = ~std::uint64_t{0};
  mc.seed = hx.seed(42);

  hwsim::FaultPlan plan = hx.fault_plan();
  if (!plan.enabled) {
    std::string err;
    if (!hwsim::FaultPlan::parse(kDefaultSpec, &plan, &err)) {
      std::fprintf(stderr, "fault_bisect: default plan: %s\n", err.c_str());
      return 2;
    }
  }

  // Phase 1: probabilistic run, recording every armed event.
  std::vector<hwsim::FaultEvent> events;
  double baseline_gap = 0.0;
  {
    hwsim::MachineConfig rec_mc = mc;
    rec_mc.faults = plan;
    hwsim::Machine m(rec_mc);
    m.fault_injector().set_recording(true);
    ReplayWorkload w(m, opt.period, false);
    if (!m.run_until(opt.horizon)) {
      std::fprintf(stderr, "fault_bisect: recording run did not finish\n");
      return 2;
    }
    events = m.fault_injector().recorded_events();
    baseline_gap = w.max_gap_periods();
    if (!w.failed(opt.gap_factor)) {
      std::fprintf(stderr,
                   "fault_bisect: plan does not fail the predicate "
                   "(max gap %.2f periods <= %.2f); raise rates or "
                   "lower --gap-factor\n",
                   baseline_gap, opt.gap_factor);
      return 1;
    }
  }
  if (events.size() < opt.min_events) {
    std::fprintf(stderr,
                 "fault_bisect: only %zu events armed (< %zu); raise "
                 "rates or --horizon\n",
                 events.size(), opt.min_events);
    return 1;
  }
  std::printf("recorded %zu armed fault events, max gap %.2f periods\n",
              events.size(), baseline_gap);

  // Phase 2: scripted baseline with a checkpoint ring.
  hwsim::MachineConfig script_mc = mc;  // faults installed via set_script
  BisectSession session(script_mc, plan, events, opt);
  if (!session.full_script_fails()) {
    std::fprintf(stderr,
                 "fault_bisect: scripted replay of the recording does "
                 "not fail — recording/replay divergence\n");
    return 2;
  }
  std::printf("scripted replay fails too; %zu checkpoints every %" PRIu64
              " cycles\n",
              session.checkpoints(), opt.every);

  // Phase 3: ddmin twice — from scratch, then checkpoint-accelerated.
  const auto t_scratch = std::chrono::steady_clock::now();
  const std::vector<hwsim::FaultEvent> min_scratch = session.ddmin(false);
  const double wall_scratch = ms_since(t_scratch);
  const std::uint64_t tests_scratch = session.tests();
  const std::uint64_t cycles_scratch = session.cycles_replayed();
  session.reset_counters();

  const auto t_ckpt = std::chrono::steady_clock::now();
  const std::vector<hwsim::FaultEvent> min_ckpt = session.ddmin(true);
  const double wall_ckpt = ms_since(t_ckpt);
  const std::uint64_t tests_ckpt = session.tests();
  const std::uint64_t cycles_ckpt = session.cycles_replayed();

  const bool agree =
      min_scratch.size() == min_ckpt.size() &&
      std::equal(min_scratch.begin(), min_scratch.end(), min_ckpt.begin(),
                 same_event);
  const bool minimal_fails = session.trial_fails(min_ckpt, false);
  const bool empty_passes = !session.trial_fails({}, false);
  const double speedup = wall_ckpt > 0.0 ? wall_scratch / wall_ckpt : 0.0;

  std::printf("minimal reproducer: %zu of %zu events "
              "(%" PRIu64 " scratch trials %.1f ms, %" PRIu64
              " checkpoint trials %.1f ms, speedup %.2fx)\n",
              min_ckpt.size(), events.size(), tests_scratch, wall_scratch,
              tests_ckpt, wall_ckpt, speedup);
  for (const hwsim::FaultEvent& ev : min_ckpt) {
    std::printf("  t=%" PRIu64 " stream=%u site=%u index=%" PRIu64
                " effects=0x%x magnitude=%" PRIu64 " vector=%d\n",
                ev.time, unsigned{ev.stream},
                static_cast<unsigned>(ev.site), ev.index,
                unsigned{ev.effects}, ev.magnitude, int{ev.vector});
  }
  if (!agree) {
    std::fprintf(stderr, "fault_bisect: checkpoint and scratch ddmin "
                         "disagree on the minimal set\n");
  }
  if (!minimal_fails) {
    std::fprintf(stderr, "fault_bisect: minimal set does not refail\n");
  }
  if (!empty_passes) {
    std::fprintf(stderr, "fault_bisect: empty schedule still fails — "
                         "the failure is not fault-induced\n");
  }

  if (!opt.out.empty()) {
    std::FILE* f = std::fopen(opt.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "fault_bisect: cannot write %s\n",
                   opt.out.c_str());
      return 2;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"fault_bisect\",\n");
    std::fprintf(f,
                 "  \"workload\": \"heartbeat-supervised spin, "
                 "%u cores, %" PRIu64 "-cycle period, %" PRIu64
                 "-cycle horizon\",\n",
                 opt.cores, opt.period, opt.horizon);
    std::fprintf(f, "  \"smoke\": %s,\n", opt.smoke ? "true" : "false");
    std::fprintf(f, "  \"scheduler\": \"%s\",\n",
                 iw::bench::Harness::scheduler_name(mc.scheduler));
    std::fprintf(f, "  \"gap_factor\": %.2f,\n", opt.gap_factor);
    std::fprintf(f, "  \"checkpoint_every\": %" PRIu64 ",\n", opt.every);
    std::fprintf(f, "  \"recorded_events\": %zu,\n", events.size());
    std::fprintf(f, "  \"baseline_max_gap_periods\": %.3f,\n",
                 baseline_gap);
    std::fprintf(f, "  \"minimal_size\": %zu,\n", min_ckpt.size());
    std::fprintf(f, "  \"minimal_events\": [\n");
    for (std::size_t i = 0; i < min_ckpt.size(); ++i) {
      const hwsim::FaultEvent& ev = min_ckpt[i];
      std::fprintf(f,
                   "    {\"time\": %" PRIu64 ", \"stream\": %u, \"site\": "
                   "%u, \"index\": %" PRIu64 ", \"effects\": %u, "
                   "\"magnitude\": %" PRIu64 ", \"vector\": %d}%s\n",
                   ev.time, unsigned{ev.stream},
                   static_cast<unsigned>(ev.site), ev.index,
                   unsigned{ev.effects}, ev.magnitude, int{ev.vector},
                   i + 1 < min_ckpt.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"tests_scratch\": %" PRIu64 ",\n", tests_scratch);
    std::fprintf(f, "  \"tests_checkpoint\": %" PRIu64 ",\n", tests_ckpt);
    std::fprintf(f, "  \"cycles_replayed_scratch\": %" PRIu64 ",\n",
                 cycles_scratch);
    std::fprintf(f, "  \"cycles_replayed_checkpoint\": %" PRIu64 ",\n",
                 cycles_ckpt);
    std::fprintf(f, "  \"wall_ms_scratch\": %.2f,\n", wall_scratch);
    std::fprintf(f, "  \"wall_ms_checkpoint\": %.2f,\n", wall_ckpt);
    std::fprintf(f, "  \"minimal_sets_agree\": %s,\n",
                 agree ? "true" : "false");
    std::fprintf(f, "  \"minimal_still_fails\": %s,\n",
                 minimal_fails ? "true" : "false");
    std::fprintf(f, "  \"empty_script_passes\": %s,\n",
                 empty_passes ? "true" : "false");
    std::fprintf(f,
                 "  \"speedup_checkpoint_vs_scratch\": {\"ddmin\": "
                 "{\"%u\": %.2f}}\n",
                 opt.cores, speedup);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", opt.out.c_str());
  }

  return (agree && minimal_fails && empty_passes) ? 0 : 1;
}

}  // namespace
}  // namespace iw::tools

int main(int argc, char** argv) {
  iw::bench::Harness hx;
  if (!hx.parse(argc, argv)) return 2;
  iw::tools::Options opt;
  if (hx.checkpoint_every() != 0) opt.every = hx.checkpoint_every();
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--cores=", 8) == 0) {
      opt.cores = static_cast<unsigned>(std::strtoul(a + 8, nullptr, 10));
    } else if (std::strncmp(a, "--horizon=", 10) == 0) {
      opt.horizon = std::strtoull(a + 10, nullptr, 10);
    } else if (std::strncmp(a, "--period=", 9) == 0) {
      opt.period = std::strtoull(a + 9, nullptr, 10);
    } else if (std::strncmp(a, "--gap-factor=", 13) == 0) {
      opt.gap_factor = std::strtod(a + 13, nullptr);
    } else if (std::strncmp(a, "--min-events=", 13) == 0) {
      opt.min_events = std::strtoull(a + 13, nullptr, 10);
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      opt.out = a + 6;
    } else if (std::strcmp(a, "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(a, "--selftest") == 0) {
      opt.selftest = true;
    }
  }
  if (opt.selftest) {
    // Small enough for ctest, still end-to-end: record, checkpoint,
    // ddmin both ways, verify the minimal set.
    opt.cores = 4;
    opt.horizon = 1'200'000;
    opt.every = 100'000;
    opt.min_events = 20;
    opt.smoke = true;
    iw::bench::Harness self;
    char prog[] = "fault_bisect";
    char faults[] = "--faults=drop=0.4,stall=0.01:300,window=700000-1100000";
    char* self_argv[] = {prog, faults, nullptr};
    if (!self.parse(2, self_argv)) return 2;
    return iw::tools::run(opt, self);
  }
  return iw::tools::run(opt, hx);
}
