// scenarioctl: command-line front end for the scenario server.
//
// Builds a scenario matrix over the shared heartbeat replay workload
// (replay_workload.hpp), warms ONE donor machine, serializes it, and
// lets the worker pool burn through the cells — every run hydrating a
// fresh Machine from the same snapshot-v2 image and diverging only
// through its installed fault plan. The JSONL it writes is
// byte-identical for any --workers value; `summarize` re-checks a
// results file after the fact.
//
// Usage:
//   scenarioctl run [--cores=N] [--warm-rounds=N] [--run-rounds=N]
//                   [--drops=P,P,...] [--seeds=N] [--strategies=all|seq]
//                   [--workers=N] [--out=FILE.jsonl]
//   scenarioctl summarize FILE.jsonl
//   scenarioctl --selftest
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "hwsim/machine.hpp"
#include "hwsim/snapshot.hpp"
#include "scenarioserver/server.hpp"

#include "replay_workload.hpp"

using namespace iw;
using namespace iw::scenarioserver;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s run [--cores=N] [--warm-rounds=N] [--run-rounds=N]\n"
      "              [--drops=P,P,...] [--seeds=N] [--strategies=all|seq]\n"
      "              [--workers=N] [--out=FILE.jsonl]\n"
      "       %s summarize FILE.jsonl\n"
      "       %s --selftest\n",
      argv0, argv0, argv0);
  return 2;
}

struct RunOptions {
  unsigned cores{4};
  std::uint64_t warm_rounds{30};
  std::uint64_t run_rounds{50};
  std::vector<double> drops{0.0, 0.05, 0.10};
  std::uint64_t seeds{4};
  bool all_strategies{true};
  unsigned workers{2};
  std::string out{"scenarios.jsonl"};
};

bool parse_u64(const char* s, std::uint64_t* out) {
  if (*s == '\0' || *s == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_drops(const char* s, std::vector<double>* out) {
  out->clear();
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0' || v < 0.0 || v > 1.0) {
      return false;
    }
    out->push_back(v);
  }
  return !out->empty();
}

class ReplayHarness final : public ScenarioHarness {
 public:
  ReplayHarness(hwsim::Machine& m, Cycles period)
      : workload_(m, period, /*fault_tolerant=*/true) {}
  void collect(std::vector<std::pair<std::string, double>>& out) override {
    out.emplace_back("max_gap_periods", workload_.max_gap_periods());
    out.emplace_back(
        "polled_beats",
        static_cast<double>(workload_.heartbeat().polled_beats()));
    out.emplace_back(
        "missed_beats",
        static_cast<double>(workload_.heartbeat().missed_beats()));
  }

 private:
  tools::ReplayWorkload workload_;
};

struct Matrix {
  ScenarioBatch batch;
  std::vector<ScenarioSpec> specs;
  Cycles horizon{0};
};

/// Warm one donor and lay out the drops x seeds x strategies matrix.
/// Every (drop, seed) pair is one digest-equivalence group; the
/// strategy axis fans out inside it.
Matrix build_matrix(const RunOptions& opt) {
  Matrix mx;
  mx.batch.base.num_cores = opt.cores;
  mx.batch.base.seed = 42;
  mx.batch.base.max_advances = 4'000'000'000ULL;
  const Cycles period = mx.batch.base.costs.freq.us_to_cycles(20.0);
  const Cycles warm = opt.warm_rounds * period;
  mx.horizon = warm + opt.run_rounds * period;

  {
    hwsim::Machine donor(mx.batch.base);
    tools::ReplayWorkload w(donor, period, /*fault_tolerant=*/true);
    if (!donor.run_until(warm)) {
      std::fprintf(stderr, "scenarioctl: donor warm-up hit a limit\n");
      std::exit(1);
    }
    mx.batch.image = donor.snapshot().serialize();
  }
  mx.batch.factory = [period](hwsim::Machine& m) {
    return std::make_unique<ReplayHarness>(m, period);
  };

  struct Strategy {
    hwsim::SchedulerKind sched;
    unsigned threads;
    bool steal;
    bool ff;
  };
  std::vector<Strategy> strategies{
      {hwsim::SchedulerKind::kFrontier, 1, true, false},
  };
  if (opt.all_strategies) {
    strategies.push_back({hwsim::SchedulerKind::kLinearScan, 1, true, false});
    strategies.push_back(
        {hwsim::SchedulerKind::kParallelEpoch, 2, true, false});
    strategies.push_back(
        {hwsim::SchedulerKind::kParallelEpoch, 2, false, false});
    strategies.push_back({hwsim::SchedulerKind::kFrontier, 1, true, true});
  }

  std::uint64_t id = 0, group = 0;
  for (const double drop : opt.drops) {
    for (std::uint64_t seed = 0; seed < opt.seeds; ++seed) {
      for (const Strategy& st : strategies) {
        ScenarioSpec s;
        s.id = id++;
        s.group = group;
        char label[64];
        std::snprintf(label, sizeof label, "drop%g/seed%llu", drop,
                      static_cast<unsigned long long>(seed));
        s.label = label;
        s.scheduler = st.sched;
        s.threads = st.threads;
        s.work_stealing = st.steal;
        s.fast_forward = st.ff;
        s.plan.enabled = drop > 0.0;
        s.plan.ipi_drop_rate = drop;
        s.fault_seed = 0xC0FFEE + seed;
        s.horizon = mx.horizon;
        mx.specs.push_back(std::move(s));
      }
      ++group;
    }
  }
  return mx;
}

int cmd_run(const RunOptions& opt) {
  Matrix mx = build_matrix(opt);
  const std::size_t cells = mx.specs.size();
  std::printf("scenarioctl: %zu cells (%zu drops x %llu seeds), image %zu "
              "words, %u workers\n",
              cells, opt.drops.size(),
              static_cast<unsigned long long>(opt.seeds),
              mx.batch.image.size(), opt.workers);

  ScenarioServer server(ScenarioServerConfig{opt.workers});
  ResultsStore results = server.run(mx.batch, std::move(mx.specs));
  const auto agree = results.group_agreement();

  std::ofstream os(opt.out);
  if (!os) {
    std::fprintf(stderr, "scenarioctl: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  results.write_jsonl(os);

  std::printf("scenarioctl: %zu results -> %s\n", results.size(),
              opt.out.c_str());
  std::printf("  scenarios_per_sec: %.1f\n", server.scenarios_per_sec());
  std::printf("  arena_high_water:  %zu bytes\n", server.arena_high_water());
  std::printf("  digest groups:     %zu (%zu disagreeing)\n", agree.groups,
              agree.disagreeing);
  if (agree.disagreeing != 0) {
    std::fprintf(stderr,
                 "scenarioctl: FAIL — execution strategies disagree inside "
                 "%zu group(s)\n",
                 agree.disagreeing);
    return 1;
  }
  return 0;
}

/// Minimal JSONL field scrape (the records are written by
/// format_record, so the layout is fixed — no general JSON parser
/// needed for a summary).
bool scrape_u64(const std::string& line, const char* key, std::uint64_t* out,
                int base = 10) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* p = line.c_str() + at + needle.size();
  if (*p == '"') ++p;  // digests are quoted hex
  char* end = nullptr;
  *out = std::strtoull(p, &end, base);
  return end != p;
}

int cmd_summarize(const char* path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "scenarioctl: cannot read %s\n", path);
    return 1;
  }
  ResultsStore rs;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::uint64_t id = 0, group = 0, digest = 0;
    if (!scrape_u64(line, "id", &id) || !scrape_u64(line, "group", &group) ||
        !scrape_u64(line, "digest", &digest, 16)) {
      std::fprintf(stderr, "scenarioctl: %s:%llu: not a scenario record\n",
                   path, static_cast<unsigned long long>(lineno + 1));
      return 1;
    }
    rs.add(id, group, digest, line);
    ++lineno;
  }
  rs.finalize();
  const auto agree = rs.group_agreement();
  std::set<std::uint64_t> digests;
  for (const auto& e : rs.entries()) digests.insert(e.digest);
  std::printf("%s: %zu records, %zu groups (%zu disagreeing), %zu distinct "
              "digests\n",
              path, rs.size(), agree.groups, agree.disagreeing,
              digests.size());
  return agree.disagreeing == 0 ? 0 : 1;
}

int selftest() {
  // Small matrix, twice, at different worker counts: the JSONL must be
  // byte-identical and every group must digest-agree.
  RunOptions opt;
  opt.cores = 4;
  opt.warm_rounds = 20;
  opt.run_rounds = 30;
  opt.drops = {0.0, 0.10};
  opt.seeds = 2;
  opt.workers = 1;

  Matrix mx = build_matrix(opt);
  ScenarioServer one(ScenarioServerConfig{1});
  ScenarioServer four(ScenarioServerConfig{4});
  std::vector<ScenarioSpec> specs2 = mx.specs;  // run() consumes
  ResultsStore a = one.run(mx.batch, std::move(mx.specs));
  ResultsStore b = four.run(mx.batch, std::move(specs2));

  std::ostringstream oa, ob;
  a.write_jsonl(oa);
  b.write_jsonl(ob);
  if (oa.str() != ob.str()) {
    std::fprintf(stderr, "selftest: FAIL — JSONL differs across worker "
                         "counts\n");
    return 1;
  }
  const auto agree = a.group_agreement();
  if (agree.groups != 4 || agree.disagreeing != 0) {
    std::fprintf(stderr, "selftest: FAIL — %zu groups, %zu disagreeing\n",
                 agree.groups, agree.disagreeing);
    return 1;
  }
  if (a.size() != 20) {  // 2 drops x 2 seeds x 5 strategies
    std::fprintf(stderr, "selftest: FAIL — %zu records, want 20\n", a.size());
    return 1;
  }
  // The faulted groups must diverge from the clean ones.
  if (a.entries().front().digest == a.entries().back().digest) {
    std::fprintf(stderr, "selftest: FAIL — faults did not diverge\n");
    return 1;
  }
  std::printf("selftest: PASS (20 cells, %zu groups, worker-count "
              "invariant, %.1f scen/s)\n",
              agree.groups, four.scenarios_per_sec());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--selftest") == 0) {
    return selftest();
  }
  if (argc >= 3 && std::strcmp(argv[1], "summarize") == 0) {
    return cmd_summarize(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "run") == 0) {
    RunOptions opt;
    for (int i = 2; i < argc; ++i) {
      const char* a = argv[i];
      std::uint64_t v = 0;
      if (std::strncmp(a, "--cores=", 8) == 0 && parse_u64(a + 8, &v) &&
          v >= 1 && v <= 1024) {
        opt.cores = static_cast<unsigned>(v);
      } else if (std::strncmp(a, "--warm-rounds=", 14) == 0 &&
                 parse_u64(a + 14, &v) && v >= 1) {
        opt.warm_rounds = v;
      } else if (std::strncmp(a, "--run-rounds=", 13) == 0 &&
                 parse_u64(a + 13, &v) && v >= 1) {
        opt.run_rounds = v;
      } else if (std::strncmp(a, "--drops=", 8) == 0) {
        if (!parse_drops(a + 8, &opt.drops)) {
          std::fprintf(stderr,
                       "scenarioctl: bad --drops (want P,P,... in [0,1])\n");
          return usage(argv[0]);
        }
      } else if (std::strncmp(a, "--seeds=", 8) == 0 && parse_u64(a + 8, &v) &&
                 v >= 1) {
        opt.seeds = v;
      } else if (std::strcmp(a, "--strategies=all") == 0) {
        opt.all_strategies = true;
      } else if (std::strcmp(a, "--strategies=seq") == 0) {
        opt.all_strategies = false;
      } else if (std::strncmp(a, "--workers=", 10) == 0 &&
                 parse_u64(a + 10, &v) && v >= 1 && v <= 256) {
        opt.workers = static_cast<unsigned>(v);
      } else if (std::strncmp(a, "--out=", 6) == 0 && a[6] != '\0') {
        opt.out = a + 6;
      } else {
        std::fprintf(stderr, "scenarioctl: bad argument: %s\n", a);
        return usage(argv[0]);
      }
    }
    return cmd_run(opt);
  }
  return usage(argv[0]);
}
