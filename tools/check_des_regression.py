#!/usr/bin/env python3
"""DES throughput regression guard for CI.

Compares a freshly-measured bench JSON (typically a --smoke run on a CI
box of unknown speed) against the committed baseline. Absolute events/s
are machine-dependent, so the guard checks *speedup ratios*, which
cancel host speed: a ratio collapsing means one mode regressed relative
to the other in the same binary on the same box.

Profiles select which ratio maps are guarded:
  --profile=des (default) — des_throughput: frontier/linear,
    parallel/frontier, auto/linear per core count, and the work-stealing
    engine's thread-scaling matrix (parallel at T host threads vs 1);
  --profile=fastforward — fastforward: wall-clock ratio of full-fidelity
    vs analytic skip-ahead per scheduler x core count
    (speedup_ff_vs_full), plus a hard requirement that the fresh run
    re-verified trace equality (traces_identical == true; the speedup is
    meaningless if the skipping run computed something else);
  --profile=bisect — fault_bisect: wall-clock ratio of from-scratch vs
    checkpoint-accelerated ddmin (speedup_checkpoint_vs_scratch), plus
    hard requirements that the fresh run's checkpoint and scratch modes
    converged on the same minimal set, that the minimal set still fails,
    and that the empty schedule passes — the speedup is meaningless if
    the accelerated bisection computed a different answer;
  --profile=scenarios — fault_sweep's scenario-server matrix: pool
    throughput ratio vs one worker (speedup_workers_vs_1, host-aware
    clamped like the thread matrix), a hard requirement that the fresh
    run re-verified worker-count-invariant digests
    (digests_worker_count_invariant == true), and a hard requirement
    that scenarios_per_sec was measured and positive — a batch whose
    results depend on how many workers raced the queue has broken the
    snapshot-hydration contract, and a missing throughput number means
    the matrix never ran;
  --profile=hotpath — des_throughput's hot-path memory-discipline
    section: hard-requires the per-core-count events_per_sec and
    events_per_sec_parallel series (every committed core count measured
    and positive — absolute throughput is host-dependent, presence is
    not), guards the parallel/frontier throughput ratio per core count
    with the tolerance floor (same binary, same box — host speed
    cancels), requires bytes_per_hot_event to be measured and no larger
    than the committed packed-record size, and holds
    allocs_per_million_events to a ceiling of committed * (1 +
    tolerance) + 1 (an absolute slack of one alloc per million events,
    so a zero-alloc baseline does not demand bit-exact zero on a noisy
    runner).

Every guarded map must be present (as a dict) in BOTH files, and every
baseline entry must be measured in the fresh run; a bench that silently
stops emitting a map is itself a regression, not a skip. Zero
comparisons is always a hard failure.

Thread-scaling floors are host-aware: scaling beyond the physical CPU
count is not expected, so when the fresh run reports host_cpus < T the
committed ratio is clamped to min(committed, host_cpus) before the
tolerance floor is applied. A 1-CPU runner therefore only asserts that
oversubscription does not collapse throughput.

Exit 0 if every ratio is within the tolerance of its committed value;
exit 1 (listing the offenders) otherwise; exit 2 on usage/shape errors.

Usage: check_des_regression.py FRESH.json BASELINE.json
           [--tolerance=0.25] [--profile=des|fastforward|bisect]
"""

import json
import sys

PROFILES = {
    "des": (
        "speedup_frontier_vs_linear",
        "speedup_parallel_vs_frontier",
        "speedup_auto_vs_linear",
        "speedup_threads_vs_1",
    ),
    "fastforward": ("speedup_ff_vs_full",),
    "bisect": ("speedup_checkpoint_vs_scratch",),
    "scenarios": ("speedup_workers_vs_1",),
    # hotpath is checked by check_hotpath(), not the generic ratio loop.
    "hotpath": (),
}

# Booleans the fresh run must assert true for the profile's ratios to
# mean anything at all; missing counts as false.
REQUIRED_FLAGS = {
    "fastforward": ("traces_identical",),
    "bisect": (
        "minimal_sets_agree",
        "minimal_still_fails",
        "empty_script_passes",
    ),
    "scenarios": ("digests_worker_count_invariant",),
}

# Numbers the fresh run must have measured (present and > 0) for the
# profile to mean anything; missing or non-positive is a hard failure.
REQUIRED_NUMBERS = {
    "scenarios": ("scenarios_per_sec",),
}

# Ratio maps whose last key is a host-thread count: the committed ratio
# is clamped to host_cpus before the floor when the runner is smaller
# than the sweep (scaling beyond the physical CPUs is not expected).
HOST_CLAMPED = ("speedup_threads_vs_1", "speedup_workers_vs_1")


def flatten(tree, prefix=()):
    """Flatten {"1024": {"2": 1.9}} into {("1024", "2"): 1.9}; flat maps
    become single-element keys. Ratio maps are numbers at the leaves."""
    out = {}
    for key, value in tree.items():
        if isinstance(value, dict):
            out.update(flatten(value, prefix + (key,)))
        else:
            out[prefix + (key,)] = value
    return out


def key_label(name, key):
    if name == "speedup_threads_vs_1" and len(key) == 2:
        return f"{name}[{key[0]} cores, {key[1]} threads]"
    if name == "speedup_workers_vs_1" and len(key) == 1:
        return f"{name}[{key[0]} workers]"
    if name == "speedup_ff_vs_full" and len(key) == 2:
        return f"{name}[{key[0]}, {key[1]} cores]"
    if name == "speedup_checkpoint_vs_scratch" and len(key) == 2:
        return f"{name}[{key[0]}, {key[1]} cores]"
    return f"{name}[{'/'.join(key)}]"


def sort_key(key):
    # Numeric parts sort numerically; scheduler names and other
    # non-numeric parts sort lexically after them.
    return tuple(
        (0, int(part), "") if part.isdigit() else (1, 0, part)
        for part in key
    )


def check_hotpath(fresh, base, tolerance, failures):
    """Guard the hot-path memory-discipline section. Returns the number
    of checks performed (counts toward the no-vacuous-pass rule)."""
    checked = 0
    fresh_hot = fresh.get("hotpath")
    base_hot = base.get("hotpath")
    bad = False
    if not isinstance(fresh_hot, dict):
        failures.append("hotpath: missing or not a map in fresh run")
        bad = True
    if not isinstance(base_hot, dict):
        failures.append("hotpath: missing or not a map in baseline")
        bad = True
    if bad:
        return 0

    # Packed-record size: host-independent bytes. Growing the record the
    # heap sifts is exactly the regression this profile exists to catch.
    fresh_bytes = fresh_hot.get("bytes_per_hot_event")
    base_bytes = base_hot.get("bytes_per_hot_event")
    if not isinstance(fresh_bytes, (int, float)) \
            or isinstance(fresh_bytes, bool) or fresh_bytes <= 0:
        failures.append(
            "hotpath.bytes_per_hot_event: fresh run did not measure "
            "this (missing or non-positive)"
        )
    elif isinstance(base_bytes, (int, float)) \
            and not isinstance(base_bytes, bool):
        checked += 1
        status = "ok" if fresh_bytes <= base_bytes else "REGRESSION"
        print(
            f"hotpath.bytes_per_hot_event: measured {fresh_bytes:.0f}, "
            f"committed {base_bytes:.0f} -> {status}"
        )
        if fresh_bytes > base_bytes:
            failures.append(
                f"hotpath.bytes_per_hot_event: {fresh_bytes:.0f} > "
                f"committed {base_bytes:.0f} (the packed heap record "
                "grew)"
            )
    else:
        failures.append(
            "hotpath.bytes_per_hot_event: missing from baseline"
        )

    # Throughput series: every committed core count must have been
    # measured and positive. Absolute events/s is host-dependent, so the
    # hard requirement is presence, not magnitude...
    series_maps = {}
    for series in ("events_per_sec", "events_per_sec_parallel"):
        fresh_map = fresh_hot.get(series)
        base_map = base_hot.get(series)
        if not isinstance(fresh_map, dict):
            failures.append(
                f"hotpath.{series}: missing or not a map in fresh run"
            )
            continue
        if not isinstance(base_map, dict):
            failures.append(
                f"hotpath.{series}: missing or not a map in baseline"
            )
            continue
        series_maps[series] = (fresh_map, base_map)
        for key in sorted(base_map, key=lambda k: sort_key((k,))):
            checked += 1
            value = fresh_map.get(key)
            ok = isinstance(value, (int, float)) \
                and not isinstance(value, bool) and value > 0
            print(
                f"hotpath.{series}[{key} cores]: "
                + (f"measured {value:.0f} -> ok" if ok
                   else "missing or non-positive -> REGRESSION")
            )
            if not ok:
                failures.append(
                    f"hotpath.{series}[{key} cores]: missing or "
                    "non-positive in fresh run"
                )

    # ...except the parallel/frontier ratio, where host speed cancels
    # (same binary, same box): guard it with the tolerance floor.
    if len(series_maps) == 2:
        fresh_f, base_f = series_maps["events_per_sec"]
        fresh_p, base_p = series_maps["events_per_sec_parallel"]
        for key in sorted(base_f, key=lambda k: sort_key((k,))):
            committed_f = base_f.get(key)
            committed_p = base_p.get(key)
            measured_f = fresh_f.get(key)
            measured_p = fresh_p.get(key)
            values = (committed_f, committed_p, measured_f, measured_p)
            if not all(isinstance(v, (int, float))
                       and not isinstance(v, bool) and v > 0
                       for v in values):
                continue  # presence failures already recorded above
            committed = committed_p / committed_f
            measured = measured_p / measured_f
            floor = committed * (1.0 - tolerance)
            checked += 1
            status = "ok" if measured >= floor else "REGRESSION"
            print(
                f"hotpath parallel/frontier[{key} cores]: measured "
                f"{measured:.2f}x, committed {committed:.2f}x, floor "
                f"{floor:.2f}x -> {status}"
            )
            if measured < floor:
                failures.append(
                    f"hotpath parallel/frontier[{key} cores]: "
                    f"{measured:.2f}x < floor {floor:.2f}x "
                    f"(committed {committed:.2f}x)"
                )

    # Allocation discipline: a ceiling, not a floor. The +1 absolute
    # slack keeps a zero-alloc baseline from demanding bit-exact zero.
    fresh_map = fresh_hot.get("allocs_per_million_events")
    base_map = base_hot.get("allocs_per_million_events")
    if not isinstance(fresh_map, dict):
        failures.append(
            "hotpath.allocs_per_million_events: missing or not a map "
            "in fresh run"
        )
    elif not isinstance(base_map, dict):
        failures.append(
            "hotpath.allocs_per_million_events: missing or not a map "
            "in baseline"
        )
    else:
        for key in sorted(base_map, key=lambda k: sort_key((k,))):
            committed = base_map[key]
            value = fresh_map.get(key)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value < 0:
                failures.append(
                    f"hotpath.allocs_per_million_events[{key} cores]: "
                    "missing or negative in fresh run"
                )
                continue
            ceiling = committed * (1.0 + tolerance) + 1.0
            checked += 1
            status = "ok" if value <= ceiling else "REGRESSION"
            print(
                f"hotpath.allocs_per_million_events[{key} cores]: "
                f"measured {value:.1f}, committed {committed:.1f}, "
                f"ceiling {ceiling:.1f} -> {status}"
            )
            if value > ceiling:
                failures.append(
                    f"hotpath.allocs_per_million_events[{key} cores]: "
                    f"{value:.1f} > ceiling {ceiling:.1f} "
                    f"(committed {committed:.1f})"
                )
    return checked


def main(argv):
    tolerance = 0.25
    profile = "des"
    paths = []
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
        elif a.startswith("--profile="):
            profile = a.split("=", 1)[1]
            if profile not in PROFILES:
                print(f"unknown profile {profile!r} (expected "
                      f"{'|'.join(PROFILES)})", file=sys.stderr)
                return 2
        else:
            paths.append(a)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(paths[0]) as f:
        fresh = json.load(f)
    with open(paths[1]) as f:
        base = json.load(f)

    host_cpus = fresh.get("host_cpus", 0)

    failures = []
    checked = 0
    for flag in REQUIRED_FLAGS.get(profile, ()):
        if fresh.get(flag) is not True:
            failures.append(
                f"{flag}: fresh run did not re-verify this invariant "
                "(missing or false)"
            )
    for number in REQUIRED_NUMBERS.get(profile, ()):
        value = fresh.get(number)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value <= 0:
            failures.append(
                f"{number}: fresh run did not measure this "
                "(missing or non-positive)"
            )
    if profile == "hotpath":
        checked += check_hotpath(fresh, base, tolerance, failures)
    for name in PROFILES[profile]:
        fresh_map = fresh.get(name)
        base_map = base.get(name)
        # A guarded map vanishing from either side means the bench (or
        # the baseline) stopped measuring something it used to — fail
        # loudly instead of skipping the comparisons.
        bad = False
        if not isinstance(fresh_map, dict):
            failures.append(f"{name}: missing or not a map in fresh run")
            bad = True
        if not isinstance(base_map, dict):
            failures.append(f"{name}: missing or not a map in baseline")
            bad = True
        if bad:
            continue
        fresh_flat = flatten(fresh_map)
        for key, committed in sorted(flatten(base_map).items(),
                                     key=lambda kv: sort_key(kv[0])):
            label = key_label(name, key)
            if key not in fresh_flat:
                failures.append(f"{label}: missing from fresh run")
                continue
            measured = fresh_flat[key]
            note = ""
            if name in HOST_CLAMPED:
                threads = int(key[-1])
                if 0 < host_cpus < threads and committed > host_cpus:
                    committed = float(host_cpus)
                    note = f" (clamped to {host_cpus} host cpus)"
            floor = committed * (1.0 - tolerance)
            checked += 1
            status = "ok" if measured >= floor else "REGRESSION"
            print(
                f"{label}: measured {measured:.2f}x, "
                f"committed {committed:.2f}x{note}, floor {floor:.2f}x "
                f"-> {status}"
            )
            if measured < floor:
                failures.append(
                    f"{label}: {measured:.2f}x < floor "
                    f"{floor:.2f}x (committed {committed:.2f}x{note})"
                )

    if checked == 0:
        # Never pass vacuously, whatever shape the inputs had.
        failures.append("no ratios compared between the two files")
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {checked} ratios within {tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
