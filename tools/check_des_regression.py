#!/usr/bin/env python3
"""DES throughput regression guard for CI.

Compares a freshly-measured des_throughput JSON (typically a --smoke run
on a CI box of unknown speed) against the committed baseline
BENCH_des_throughput.json. Absolute events/s are machine-dependent, so
the guard checks the *speedup ratios* — frontier/linear,
parallel/frontier, auto/linear per core count — which cancel host speed:
a ratio collapsing means a scheduler regressed relative to the others in
the same binary on the same box.

Exit 0 if every ratio present in both files is within the tolerance of
the committed value; exit 1 (listing the offenders) otherwise.

Usage: check_des_regression.py FRESH.json BASELINE.json [--tolerance=0.25]
"""

import json
import sys

GUARDED_MAPS = (
    "speedup_frontier_vs_linear",
    "speedup_parallel_vs_frontier",
    "speedup_auto_vs_linear",
)


def main(argv):
    tolerance = 0.25
    paths = []
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
        else:
            paths.append(a)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(paths[0]) as f:
        fresh = json.load(f)
    with open(paths[1]) as f:
        base = json.load(f)

    failures = []
    checked = 0
    for name in GUARDED_MAPS:
        fresh_map = fresh.get(name)
        base_map = base.get(name)
        if not isinstance(fresh_map, dict) or not isinstance(base_map, dict):
            continue
        for cores, committed in sorted(base_map.items(), key=lambda kv: int(kv[0])):
            if cores not in fresh_map:
                failures.append(f"{name}[{cores} cores]: missing from fresh run")
                continue
            measured = fresh_map[cores]
            floor = committed * (1.0 - tolerance)
            checked += 1
            status = "ok" if measured >= floor else "REGRESSION"
            print(
                f"{name}[{cores} cores]: measured {measured:.2f}x, "
                f"committed {committed:.2f}x, floor {floor:.2f}x -> {status}"
            )
            if measured < floor:
                failures.append(
                    f"{name}[{cores} cores]: {measured:.2f}x < floor "
                    f"{floor:.2f}x (committed {committed:.2f}x)"
                )

    if checked == 0:
        print("error: no comparable speedup maps between the two files",
              file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {checked} ratios within {tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
