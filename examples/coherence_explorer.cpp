// Coherence explorer (paper §V-B): run any PBBS-like kernel under plain
// MESI and under selective coherence deactivation, and inspect exactly
// where the protocol traffic went.
//
//   $ ./coherence_explorer [map|reduce|filter|bfs|sort] [cores]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "coherence/simulator.hpp"
#include "workloads/pbbs_traces.hpp"

using namespace iw;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "map";
  const unsigned cores =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 24;

  workloads::PbbsParams p;
  p.cores = cores;
  p.elements = 10'000 * cores;
  p.rounds = 3;

  coherence::Trace trace = which == "reduce"   ? workloads::pbbs_reduce(p)
                           : which == "filter" ? workloads::pbbs_filter(p)
                           : which == "bfs"    ? workloads::pbbs_bfs(p)
                           : which == "sort"   ? workloads::pbbs_sort(p)
                                               : workloads::pbbs_map(p);

  std::printf("kernel %s: %zu accesses, %zu regions, %zu handoffs, %u "
              "cores\n",
              trace.name.c_str(), trace.accesses.size(),
              trace.regions.size(), trace.handoffs.size(), cores);
  for (const auto& r : trace.regions) {
    if (r.id < 4 || r.id + 2 > trace.regions.size()) {
      std::printf("  region %-12s %8llu B  class=%s%s\n", r.name.c_str(),
                  static_cast<unsigned long long>(r.size),
                  r.cls == coherence::RegionClass::kShared ? "shared"
                  : r.cls == coherence::RegionClass::kReadOnly
                      ? "read-only"
                      : "task-private",
                  r.streaming_writes ? " +streaming" : "");
    }
  }

  coherence::SimStats stats[2];
  for (int deact = 0; deact < 2; ++deact) {
    coherence::SimConfig cfg;
    cfg.num_cores = cores;
    cfg.noc.num_cores = cores;
    cfg.private_cache = coherence::CacheConfig{64 * 1024, 8, 64};
    cfg.selective_deactivation = deact == 1;
    coherence::CoherenceSim sim(cfg, Rng(42));
    stats[deact] = sim.run(trace);
  }

  std::printf("\n%-26s %14s %14s\n", "metric", "MESI", "MESI+deact");
  auto row = [&](const char* name, double a, double b) {
    std::printf("%-26s %14.0f %14.0f\n", name, a, b);
  };
  row("avg access latency (cyc)", stats[0].avg_latency(),
      stats[1].avg_latency());
  row("directory lookups", stats[0].directory_lookups,
      stats[1].directory_lookups);
  row("invalidations", stats[0].invalidations, stats[1].invalidations);
  row("3-hop transfers", stats[0].three_hop_transfers,
      stats[1].three_hop_transfers);
  row("handoff flushes", stats[0].handoff_flushes,
      stats[1].handoff_flushes);
  row("interconnect messages", stats[0].noc.messages,
      stats[1].noc.messages);
  row("socket crossings", stats[0].noc.socket_crossings,
      stats[1].noc.socket_crossings);
  row("uncore energy (nJ)", stats[0].uncore_energy_pj() / 1e3,
      stats[1].uncore_energy_pj() / 1e3);

  std::printf("\nspeedup %.2fx, uncore energy cut %.1f%%\n",
              static_cast<double>(stats[0].total_latency) /
                  static_cast<double>(stats[1].total_latency),
              100 * (1 - stats[1].uncore_energy_pj() /
                             stats[0].uncore_energy_pj()));
  return 0;
}
