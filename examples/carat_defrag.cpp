// CARAT example (paper §IV-A): protection and data mobility with no
// hardware support — build a fragmented heap holding a linked list,
// watch guards catch violations, then defragment the heap while the
// list stays intact because the runtime patches every escaped pointer.
// Finishes with the PIK pipeline: transform + attest + run a "user
// program" at kernel level.
//
//   $ ./carat_defrag
#include <cstdio>

#include "carat/pik_image.hpp"
#include "carat/runtime.hpp"
#include "common/rng.hpp"
#include "ir/builder.hpp"

using namespace iw;

int main() {
  std::printf("CARAT: compiler/runtime address translation\n");
  std::printf("===========================================\n\n");

  carat::CaratRuntime rt(carat::CaratConfig{0x1000, 1 << 18, false});

  // 1. Build a linked list interleaved with junk allocations.
  Rng rng(7);
  Addr head = 0, prev = 0;
  std::vector<Addr> junk;
  for (int i = 0; i < 64; ++i) {
    const Addr node = *rt.alloc(16);
    const Addr j = *rt.alloc(64 + rng.uniform(0, 64) * 8);
    junk.push_back(j);
    rt.write(node, i * i);
    rt.write(node + 8, 0);
    rt.register_escape(node + 8);  // the compiler tracked this pointer slot
    if (prev != 0) {
      rt.write(prev + 8, static_cast<std::int64_t>(node));
    } else {
      head = node;
    }
    prev = node;
  }
  std::printf("heap: %zu allocations, %llu bytes tracked\n",
              rt.allocations().count(),
              static_cast<unsigned long long>(
                  rt.allocations().tracked_bytes()));

  // 2. Guards: in-bounds ok, out-of-bounds and wrong-permission caught.
  rt.protect(head, carat::Perm::kRead);
  std::printf("guard(list head, read)    -> %s\n",
              rt.check_access(head, 8, false) ? "allowed" : "violation");
  std::printf("guard(list head, write)   -> %s (protected read-only)\n",
              rt.check_access(head, 8, true) ? "allowed" : "violation");
  std::printf("guard(untracked address)  -> %s\n",
              rt.check_access(0x20, 8, false) ? "allowed" : "violation");
  rt.protect(head, carat::Perm::kReadWrite);

  // 3. Fragment the heap, then defragment with live pointers.
  for (Addr j : junk) rt.free(j);
  std::printf("\nafter freeing junk: fragmentation %.2f, largest hole "
              "%llu B\n",
              rt.fragmentation(),
              static_cast<unsigned long long>(rt.largest_free_hole()));
  const unsigned moved = rt.defragment();
  std::printf("defragment(): moved %u allocations, patched %llu pointers, "
              "fragmentation now %.2f\n",
              moved,
              static_cast<unsigned long long>(
                  rt.stats().pointers_patched),
              rt.fragmentation());

  // Walk the list to prove integrity.
  Addr cur = 0;
  for (const auto& [base, a] : rt.allocations().entries()) {
    if (a.size == 16 && rt.read(base) == 0) {
      cur = base;
      break;
    }
  }
  int count = 0;
  bool intact = true;
  while (cur != 0 && count < 64) {
    if (rt.read(cur) != static_cast<std::int64_t>(count) * count) {
      intact = false;
      break;
    }
    cur = static_cast<Addr>(rt.read(cur + 8));
    ++count;
  }
  std::printf("linked-list walk after defrag: %d nodes, %s\n\n", count,
              intact && count == 64 ? "INTACT" : "CORRUPTED");

  // 4. PIK: transform a "user program", attest it, run it in-kernel.
  ir::Module m;
  ir::Function* prog = ir::programs::sum_array(m);
  carat::PikImage image(m);
  std::printf("PIK image: %u per-access guards before hoisting, %u after; "
              "attestation %016llx\n",
              image.guards_before(), image.guards_after(),
              static_cast<unsigned long long>(image.attestation_hash()));
  std::printf("kernel admission check: %s\n",
              image.attest(image.attestation_hash()) ? "ATTESTED"
                                                     : "REJECTED");
  carat::CaratRuntime kernel_rt;
  ir::Interp setup(m, kernel_rt.interp_hooks());
  // Stage input data at a tracked allocation, then run at kernel level.
  const Addr buf = *kernel_rt.alloc(8 * 64);
  for (int i = 0; i < 64; ++i) setup.poke(buf + 8u * i, i);
  Cycles cycles = 0;
  ir::Interp run(m, kernel_rt.interp_hooks());
  for (int i = 0; i < 64; ++i) run.poke(buf + 8u * i, i);
  const auto result =
      run.run(prog->id(), {static_cast<std::int64_t>(buf), 64});
  cycles = result.cycles;
  std::printf("ran user_main in-kernel: sum=%lld in %llu cycles, %llu "
              "range checks, %llu violations\n",
              static_cast<long long>(result.ret),
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(
                  kernel_rt.stats().range_checks),
              static_cast<unsigned long long>(
                  kernel_rt.stats().violations));
  return 0;
}
