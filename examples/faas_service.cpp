// FaaS-style service built on virtines (paper §IV-D): requests arrive
// and each one runs in its own isolated virtine; Wasp's pool and
// snapshot caches keep the per-request start-up in the ~100 µs regime
// the paper reports.
//
//   $ ./faas_service [requests]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "virtine/wasp.hpp"

using namespace iw;
using namespace iw::virtine;

namespace {

/// The "deployed function": hash a request payload (integer-only: its
/// bespoke context doesn't even set up the FPU).
GuestFn handler(std::uint64_t request_id) {
  return [request_id](GuestEnv& env) -> GuestResult {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ (request_id * 0x9e3779b9);
    env.store(0, static_cast<std::int64_t>(h));
    for (int i = 1; i < 32; ++i) {
      h = h * 0x100000001b3ULL +
          static_cast<std::uint64_t>(env.load(i - 1)) +
          static_cast<std::uint64_t>(i);
      h ^= h >> 29;
      env.store(static_cast<std::size_t>(i), static_cast<std::int64_t>(h));
    }
    return {static_cast<std::int64_t>(h), 2'500};
  };
}

}  // namespace

int main(int argc, char** argv) {
  const int requests = argc > 1 ? std::atoi(argv[1]) : 200;

  // The compiler synthesized a bespoke context for this function: no
  // FPU, no paging, 16-bit-capable shim.
  const auto spec = ContextSpec::synthesize(kFeat16BitOnly);
  std::printf("bespoke context for handler: %s\n\n", spec.describe().c_str());

  Wasp wasp;
  wasp.prepare_snapshot(spec);
  wasp.warm_pool(spec, 8);

  Rng rng(2026);
  std::vector<double> latencies_us;
  std::uint64_t checksum = 0;
  for (int r = 0; r < requests; ++r) {
    // 70% of requests hit the snapshot fast path; pool handles bursts.
    const SpawnPath path =
        rng.chance(0.7) ? SpawnPath::kSnapshot : SpawnPath::kPooled;
    const auto inv = wasp.invoke(spec, path, handler(r));
    checksum ^= static_cast<std::uint64_t>(inv.result.value);
    latencies_us.push_back(wasp.startup_us(inv.total_cycles));
    if (path == SpawnPath::kPooled) wasp.warm_pool(spec, 1);  // refill
  }

  const std::span<const double> lat(latencies_us.data(),
                                    latencies_us.size());
  std::printf("served %d requests (checksum %016llx)\n", requests,
              static_cast<unsigned long long>(checksum));
  std::printf("end-to-end latency: p50 %.1f us, p95 %.1f us, p99 %.1f us\n",
              percentile(lat, 50), percentile(lat, 95),
              percentile(lat, 99));
  std::printf("spawns: %llu snapshot, %llu pooled, %llu cold\n",
              static_cast<unsigned long long>(wasp.stats().snapshot_spawns),
              static_cast<unsigned long long>(wasp.stats().pooled_spawns),
              static_cast<unsigned long long>(wasp.stats().cold_spawns));
  std::printf("startup p99: %.1f us  (paper: 'as low as 100 us')\n",
              wasp.startup_us(
                  wasp.stats().startup_cycles.value_at_percentile(99)));
  return 0;
}
