// Blended far memory example (paper §V-C): a key-value working set
// spills to remote memory. Compare transparent page swapping against
// compiler-blended object-granularity evacuation as local memory
// shrinks.
//
//   $ ./blended_farmem [local_kib]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "blending/farmem.hpp"
#include "common/rng.hpp"

using namespace iw;
using namespace iw::blending;

int main(int argc, char** argv) {
  const std::uint64_t local_kib =
      argc > 1 ? static_cast<std::uint64_t>(std::atoi(argv[1])) : 256;

  FarMemConfig cfg;
  cfg.local_bytes = local_kib * 1024;
  std::printf("local memory: %llu KiB; remote link: rtt=%llu cyc, "
              "%.0f B/cyc\n\n",
              static_cast<unsigned long long>(local_kib),
              static_cast<unsigned long long>(cfg.network_rtt),
              cfg.bytes_per_cycle);

  // A KV store: 8192 values of 96 B each (~768 KiB), zipf-ish access.
  ObjectFarMem ofm(cfg);
  PageSwapFarMem pfm(cfg);
  const int kValues = 8'192;
  std::vector<Addr> values;
  values.reserve(kValues);
  for (int i = 0; i < kValues; ++i) values.push_back(ofm.alloc(96));

  Rng rng(99);
  std::vector<int> hot;
  for (int i = 0; i < kValues / 8; ++i) {
    hot.push_back(static_cast<int>(rng.uniform(0, kValues - 1)));
  }

  Cycles oc = 0, pc = 0;
  const int kOps = 80'000;
  for (int i = 0; i < kOps; ++i) {
    const int idx = rng.chance(0.85)
                        ? hot[rng.uniform(0, hot.size() - 1)]
                        : static_cast<int>(rng.uniform(0, kValues - 1));
    const bool put = rng.chance(0.25);
    oc += ofm.access(values[idx] + 8 * rng.uniform(0, 11), 8, put);
    pc += pfm.access(static_cast<Addr>(idx) * 96 + 8 * rng.uniform(0, 11),
                     8, put);
  }

  const auto& os = ofm.stats();
  const auto& ps = pfm.stats();
  std::printf("%-28s %14s %14s\n", "metric", "page-swap",
              "object-blended");
  std::printf("%-28s %14.0f %14.0f\n", "avg GET/PUT latency (cyc)",
              static_cast<double>(pc) / kOps,
              static_cast<double>(oc) / kOps);
  std::printf("%-28s %14llu %14llu\n", "remote fetches",
              static_cast<unsigned long long>(ps.misses),
              static_cast<unsigned long long>(os.misses));
  std::printf("%-28s %14.1f %14.1f\n", "MiB moved from remote",
              static_cast<double>(ps.bytes_fetched) / (1 << 20),
              static_cast<double>(os.bytes_fetched) / (1 << 20));
  std::printf("%-28s %14.1f %14.1f\n", "fetch amplification",
              ps.fetch_amplification(), os.fetch_amplification());
  std::printf("\nspeedup from object-granularity blending: %.2fx\n",
              static_cast<double>(pc) / static_cast<double>(oc));
  std::printf("(the compiler knew the object boundaries — no page-sized "
              "collateral, no fault traps)\n");
  return 0;
}
