// Kernel OpenMP example: run a NAS-style mini-app under any of the four
// iwomp execution modes (paper §V-A).
//
//   $ ./kernel_openmp [bt|sp|cg] [threads] [linux|rtk|pik|cck]
//   $ ./kernel_openmp bt 16 rtk
#include <cstdio>
#include <cstring>
#include <string>

#include "omp/runtime.hpp"

using namespace iw;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "bt";
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 16;
  const std::string mode_str = argc > 3 ? argv[3] : "";

  workloads::MiniApp app = which == "sp"   ? workloads::sp_mini(32, 3)
                           : which == "cg" ? workloads::cg_mini(60'000, 6)
                                           : workloads::bt_mini(32, 3);

  std::printf("%s: %llu iterations over %zu phases x %u timesteps, "
              "footprint %.1f MiB\n\n",
              app.name.c_str(),
              static_cast<unsigned long long>(app.total_iterations()),
              app.phases.size(), app.timesteps,
              static_cast<double>(app.footprint_bytes) / (1 << 20));

  auto run_mode = [&](omp::OmpMode mode) {
    omp::OmpConfig cfg;
    cfg.mode = mode;
    cfg.num_threads = threads;
    const auto res = omp::run_miniapp(app, cfg);
    std::printf("%-6s P=%-3u makespan %10.2f Mcycles  barriers %4llu  "
                "tasks %5llu  tlb-miss %.2f%%\n",
                omp::mode_name(mode), threads,
                static_cast<double>(res.makespan) / 1e6,
                static_cast<unsigned long long>(res.barriers_passed),
                static_cast<unsigned long long>(res.tasks_executed),
                100 * res.tlb_miss_rate);
    return res.makespan;
  };

  if (!mode_str.empty()) {
    omp::OmpMode mode = omp::OmpMode::kRTK;
    if (mode_str == "linux") mode = omp::OmpMode::kLinux;
    if (mode_str == "pik") mode = omp::OmpMode::kPIK;
    if (mode_str == "cck") mode = omp::OmpMode::kCCK;
    run_mode(mode);
    return 0;
  }

  const auto linux = run_mode(omp::OmpMode::kLinux);
  const auto rtk = run_mode(omp::OmpMode::kRTK);
  run_mode(omp::OmpMode::kPIK);
  run_mode(omp::OmpMode::kCCK);
  std::printf("\nRTK speedup over Linux at P=%u: %.2fx\n", threads,
              static_cast<double>(linux) / static_cast<double>(rtk));
  return 0;
}
