// Quickstart: boot a simulated machine, run Nautilus on it, and watch
// the interweaving primitives at work — threads, events, fibers with
// compiler-based timing, and a LAPIC+IPI heartbeat.
//
//   $ ./quickstart
#include <cstdio>

#include "heartbeat/delivery.hpp"
#include "nautilus/event.hpp"
#include "nautilus/fiber.hpp"
#include "nautilus/kernel.hpp"

using namespace iw;

int main() {
  std::printf("interweave quickstart\n=====================\n\n");

  // 1. A 4-core KNL-like machine with a Nautilus kernel on it.
  hwsim::MachineConfig mc;
  mc.num_cores = 4;
  mc.costs = hwsim::CostModel::knl();
  hwsim::Machine machine(mc);
  nautilus::Kernel kernel(machine);
  kernel.attach();
  std::printf("machine: %u cores @ %.1f GHz, interrupt dispatch = %llu "
              "cycles\n\n",
              machine.num_cores(), machine.costs().freq.ghz,
              static_cast<unsigned long long>(
                  machine.costs().interrupt_dispatch));

  // 2. Producer/consumer threads on different cores, synchronized with
  //    a Nautilus wait queue (no kernel/user crossing exists to pay).
  nautilus::WaitQueue ready(kernel);
  int produced = 0;

  nautilus::ThreadConfig consumer;
  consumer.name = "consumer";
  consumer.bound_core = 1;
  auto cphase = std::make_shared<int>(0);
  consumer.body = [&, cphase](nautilus::ThreadContext& ctx)
      -> nautilus::StepResult {
    if (*cphase == 0) {
      *cphase = 1;
      std::printf("[%8llu cyc] consumer: waiting on core %u\n",
                  static_cast<unsigned long long>(ctx.core.clock()),
                  ctx.core.id());
      return nautilus::StepResult::block(100, &ready);
    }
    std::printf("[%8llu cyc] consumer: woke up, got value %d\n",
                static_cast<unsigned long long>(ctx.core.clock()),
                produced);
    return nautilus::StepResult::done(100);
  };
  kernel.spawn(std::move(consumer));

  nautilus::ThreadConfig producer;
  producer.name = "producer";
  producer.bound_core = 0;
  auto pphase = std::make_shared<int>(0);
  producer.body = [&, pphase](nautilus::ThreadContext& ctx)
      -> nautilus::StepResult {
    if (*pphase == 0) {
      *pphase = 1;
      return nautilus::StepResult::cont(25'000);  // compute something
    }
    produced = 42;
    ready.signal(ctx.core);
    std::printf("[%8llu cyc] producer: signaled from core %u\n",
                static_cast<unsigned long long>(ctx.core.clock()),
                ctx.core.id());
    return nautilus::StepResult::done(100);
  };
  kernel.spawn(std::move(producer));

  machine.run();
  std::printf("\n");

  // 3. Compiler-timed fibers: preemption at injected timing calls, no
  //    interrupts, no FP save unless live.
  nautilus::FiberSetConfig fc;
  fc.mode = nautilus::FiberMode::kCompilerTimed;
  fc.quantum = 5'000;
  nautilus::FiberSet fibers(fc, machine.costs().fp_save,
                            machine.costs().fp_restore);
  for (int i = 0; i < 3; ++i) {
    nautilus::FiberConfig f;
    f.name = "fiber" + std::to_string(i);
    auto left = std::make_shared<int>(4);
    f.body = [left, i](nautilus::FiberContext&) -> nautilus::FiberStep {
      std::printf("  fiber %d running a 3000-cycle region\n", i);
      if (--*left == 0) return nautilus::FiberStep::done(3'000);
      return nautilus::FiberStep::cont(3'000);
    };
    fibers.add(std::move(f));
  }
  nautilus::ThreadConfig host;
  host.name = "fiber-host";
  host.bound_core = 2;
  host.body = fibers.as_thread_body();
  kernel.spawn(std::move(host));
  machine.run();
  std::printf("fibers: %llu switches, %.0f cycles each (vs ~%llu for an "
              "interrupt-driven thread switch)\n\n",
              static_cast<unsigned long long>(fibers.stats().switches),
              static_cast<double>(fibers.stats().switch_overhead) /
                  static_cast<double>(fibers.stats().switches),
              static_cast<unsigned long long>(
                  machine.costs().interrupt_dispatch +
                  machine.costs().interrupt_return + 500));

  // 4. Heartbeats: LAPIC on CPU 0, IPI broadcast, flags polled at
  //    compiler-chosen boundaries.
  heartbeat::NautilusHeartbeat hb(machine);
  hb.start(machine.costs().freq.us_to_cycles(100.0), 4);
  machine.run_until(machine.now() + 2'000'000);
  hb.stop();
  for (unsigned c = 0; c < 4; ++c) {
    std::printf("core %u: %llu heartbeats at %.1f kHz (cv %.2f%%)\n", c,
                static_cast<unsigned long long>(hb.state(c).delivered),
                hb.delivered_rate_hz(c, machine.costs().freq) / 1e3,
                100 * hb.jitter_cv(c));
  }
  std::printf("\ndone. next: examples/kernel_openmp, examples/faas_service,"
              "\n      examples/carat_defrag, examples/coherence_explorer\n");
  return 0;
}
